//! Compiled rule plans and their execution.
//!
//! A [`RulePlan`] is a rule whose body has been reordered by the safety
//! checker ([`crate::safety`]) into an executable pipeline over *binding
//! rows* — partial assignments of the rule's variables (`None` =
//! unbound). Each [`Step`] either extends the bindings (relation
//! scan-join, IE call) or filters them (negation, comparison, zero-output
//! IE call).

use crate::error::{EngineError, Result};
use crate::ie::{cached_ie_call, DocsHandle, IeContext, IeFunction, IeOutput, SharedDocs};
use crate::optimizer::{self, IndexCache, RuleOpt, SplitClass, TupleIndex};
use crate::registry::Registry;
use rustc_hash::{FxHashMap, FxHashSet};
use spannerlib_cache::{MemoKey, SharedIeMemo};
use spannerlib_core::{DocumentStore, Relation, Tuple, Value};
use spannerlib_par::ThreadPool;
use spannerlib_trace::{RunTrace, SpanId, SpanKind, NO_SPAN};
use spannerlog_parser::CmpOp;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A term resolved against the rule's variable table.
#[derive(Debug, Clone, PartialEq)]
pub enum PTerm {
    /// Variable with index into the binding row.
    Var(usize),
    /// A constant value.
    Const(Value),
    /// `_` — matches anything, binds nothing.
    Wildcard,
}

/// One pipeline step.
#[derive(Debug, Clone)]
pub enum Step {
    /// Join current bindings with a stored relation.
    Scan {
        /// Relation to scan.
        relation: String,
        /// One term per relation column.
        terms: Vec<PTerm>,
    },
    /// Call an IE function for each binding row and join its output.
    Ie {
        /// Function name (for diagnostics).
        function: String,
        /// Input terms (bound vars / constants — guaranteed by safety).
        inputs: Vec<PTerm>,
        /// Output terms (new vars bind; bound vars/constants filter).
        outputs: Vec<PTerm>,
    },
    /// Drop rows for which a matching tuple exists.
    Negation {
        /// Relation that must *not* contain a match.
        relation: String,
        /// One term per column (all vars bound; wildcards allowed).
        terms: Vec<PTerm>,
    },
    /// Drop rows failing a comparison (all vars bound).
    Compare {
        /// Left operand.
        left: PTerm,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: PTerm,
    },
}

/// A head output column.
#[derive(Debug, Clone)]
pub enum HeadOut {
    /// Project a bound variable.
    Var(usize),
    /// Emit a constant.
    Const(Value),
    /// Aggregate a variable within each group.
    Aggregate {
        /// Aggregation function name.
        func: String,
        /// Conversion chain as written (outermost first).
        conversions: Vec<String>,
        /// Index of the aggregated variable.
        var: usize,
    },
}

/// An executable rule.
#[derive(Debug, Clone)]
pub struct RulePlan {
    /// Head predicate.
    pub head_predicate: String,
    /// Ordered pipeline.
    pub steps: Vec<Step>,
    /// Head projection (aggregates trigger the group-by path).
    pub head: Vec<HeadOut>,
    /// Variable names by index (diagnostics).
    pub var_names: Vec<String>,
    /// Source line of the rule.
    pub line: usize,
    /// The rule's source text as reconstructed by the parser
    /// (diagnostics: limit attribution, trace labels).
    pub source: String,
    /// `(predicate, through_negation_or_aggregation)` dependencies for
    /// stratification.
    pub dependencies: Vec<(String, bool)>,
    /// Planner annotation ([`crate::optimizer::annotate`]), filled at
    /// compile time. `None` (e.g. for hand-built plans) executes the
    /// steps in textual order.
    pub opt: Option<RuleOpt>,
}

impl RulePlan {
    /// Whether the plan has any aggregate head column.
    pub fn has_aggregation(&self) -> bool {
        self.head
            .iter()
            .any(|h| matches!(h, HeadOut::Aggregate { .. }))
    }
}

/// A binding row: `None` = variable not yet bound.
type Row = Vec<Option<Value>>;

/// Evaluation-wide counters that shard workers race on during parallel
/// firings — relaxed atomics, folded into the (single-threaded) trace
/// once per rule firing. Cheap enough to keep on the serial path too,
/// so both paths run identical accounting code.
#[derive(Debug, Default)]
pub struct ParTally {
    /// Relation rows scanned by join steps.
    pub rows_scanned: AtomicU64,
    /// IE batch steps executed (per shard on the parallel path).
    pub ie_batches: AtomicU64,
    /// Shard tasks spawned for split-correct rule firings.
    pub shard_tasks: AtomicU64,
}

/// The parallel-execution environment: present when the session built a
/// worker pool and moved the document store behind the shared lock for
/// the duration of the evaluation.
#[derive(Clone, Copy)]
pub struct ParExec<'a> {
    /// The session's work-stealing pool.
    pub pool: &'a ThreadPool,
    /// The document store, shared across shard workers.
    pub docs: &'a SharedDocs,
}

/// The execution environment of [`execute`], bundled so the signature
/// stays within clippy's argument budget as instrumentation grew.
pub struct ExecCtx<'a> {
    /// IE / aggregate / conversion registry.
    pub registry: &'a Registry,
    /// Step index whose scan reads from `deltas` instead of `relations`
    /// (semi-naive evaluation); `None` for a full evaluation.
    pub delta_at: Option<usize>,
    /// Per-round deltas of recursive predicates.
    pub deltas: &'a FxHashMap<String, Relation>,
    /// IE memo table, when enabled.
    pub cache: Option<&'a SharedIeMemo>,
    /// Whether the cost-based planner reorders annotated rule bodies.
    pub planner: bool,
    /// Evaluation-wide scan-index cache (planner on); `None` falls back
    /// to building a fresh borrowed index per scan. Single-threaded by
    /// design — shard workers always run with `None`.
    pub indexes: Option<&'a RefCell<IndexCache>>,
    /// Parallel-execution environment; `None` pins every firing to the
    /// serial path.
    pub par: Option<ParExec<'a>>,
    /// Shared evaluation-wide counters.
    pub tally: &'a ParTally,
    /// Wall-clock budget of the run (`EvalLimits::max_millis`), checked
    /// before each IE batch; `None` = unlimited.
    pub deadline: Option<crate::eval::EvalDeadline>,
}

/// Where one [`execute`] call reports its trace data: the run's
/// collector, the rule's profiling handle, and the enclosing rule span.
pub struct TraceCtx<'a> {
    /// The evaluation run's collector.
    pub trace: &'a mut RunTrace,
    /// Handle from `RunTrace::register_rule` for the executing rule.
    pub rule: usize,
    /// The rule span join/IE-batch spans nest under.
    pub parent: SpanId,
}

/// Executes `plan` against the given relations, returning the derived
/// head tuples. `ctx.delta_at`, when set, makes the scan at that step
/// index read from `ctx.deltas` instead of `relations` (semi-naive
/// evaluation). `ctx.cache`, when set, memoizes IE calls across rows,
/// reruns, and executions. Join and IE-batch work is reported through
/// `tr` (every call is a no-op when tracing is off).
pub fn execute(
    plan: &RulePlan,
    relations: &FxHashMap<String, Relation>,
    docs: &mut DocumentStore,
    ctx: &ExecCtx<'_>,
    tr: &mut TraceCtx<'_>,
) -> Result<Vec<Tuple>> {
    let mut handle = DocsHandle::Exclusive(docs);
    execute_with(plan, relations, &mut handle, ctx, tr)
}

/// [`execute`] over a [`DocsHandle`], so the evaluator can run the same
/// code whether the document store is held exclusively (serial) or
/// shared behind a lock (parallel). When `ctx.par` is set and the rule
/// was classified split-correct, the binding rows are partitioned on
/// the rule's document variable after the serial prefix binds it, and
/// the remaining steps run shard-parallel on the pool; shard results
/// merge back in shard index order (stable document order), so the
/// derived tuple *set* is identical to the serial path's.
pub fn execute_with(
    plan: &RulePlan,
    relations: &FxHashMap<String, Relation>,
    docs: &mut DocsHandle<'_>,
    ctx: &ExecCtx<'_>,
    tr: &mut TraceCtx<'_>,
) -> Result<Vec<Tuple>> {
    validate_var_indexes(plan)?;
    let n_vars = plan.var_names.len();
    let rows: Vec<Row> = vec![vec![None; n_vars]];

    // Delta-aware cardinality of the relation scanned by step `i` —
    // the planner's cost input and the trace's estimate column.
    let scan_rows = |i: usize| -> usize {
        let Some(Step::Scan { relation, .. }) = plan.steps.get(i) else {
            return 0;
        };
        let map = if ctx.delta_at == Some(i) {
            ctx.deltas
        } else {
            relations
        };
        map.get(relation.as_str()).map_or(0, Relation::len)
    };

    let order: Vec<usize> = match plan.opt.as_ref().filter(|_| ctx.planner) {
        Some(opt) => {
            let order = optimizer::order_steps(plan, opt, scan_rows);
            tr.trace
                .plan_chosen(tr.rule, || optimizer::describe(plan, &order, scan_rows));
            order
        }
        None => (0..plan.steps.len()).collect(),
    };

    let scanned_before = ctx.tally.rows_scanned.load(Ordering::Relaxed);
    let split = plan.opt.as_ref().map(|o| o.split).unwrap_or_default();
    let result = match (ctx.par, split) {
        (Some(par), SplitClass::Parallel { doc_var }) => {
            // Serial prefix: run steps in order until the document
            // variable is bound, then shard the surviving rows.
            let opt = plan.opt.as_ref().expect("split verdict implies annotation");
            let mut bound = vec![false; n_vars];
            let mut split_at = order.len();
            for (pos, &i) in order.iter().enumerate() {
                for &v in &opt.steps[i].binds {
                    if let Some(b) = bound.get_mut(v) {
                        *b = true;
                    }
                }
                if bound.get(doc_var) == Some(&true) {
                    split_at = pos + 1;
                    break;
                }
            }
            run_steps(plan, &order[..split_at], rows, relations, docs, ctx, tr).and_then(|seeded| {
                run_sharded(
                    plan,
                    &order[split_at..],
                    seeded,
                    relations,
                    ctx,
                    tr,
                    ShardExec { par, doc_var },
                )
            })
        }
        _ => run_steps(plan, &order, rows, relations, docs, ctx, tr),
    };
    // Rows scanned flow through the shared tally (shard workers race on
    // it) and fold into the trace once per firing.
    tr.trace.join_scanned(
        tr.rule,
        ctx.tally
            .rows_scanned
            .load(Ordering::Relaxed)
            .saturating_sub(scanned_before),
    );
    project_head(plan, result?, docs, ctx.registry)
}

/// Runs the pipeline steps selected by `order` over `rows`. This is the
/// single-threaded core both paths share: the serial path passes the
/// full order, the parallel path passes the prefix (exclusively) and
/// then the suffix once per shard (with `ctx.par = None`).
fn run_steps(
    plan: &RulePlan,
    order: &[usize],
    mut rows: Vec<Row>,
    relations: &FxHashMap<String, Relation>,
    docs: &mut DocsHandle<'_>,
    ctx: &ExecCtx<'_>,
    tr: &mut TraceCtx<'_>,
) -> Result<Vec<Row>> {
    let empty = Relation::new(spannerlib_core::Schema::empty());
    for &i in order {
        let step = &plan.steps[i];
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        match step {
            Step::Scan { relation, terms } => {
                let is_delta = ctx.delta_at == Some(i);
                let rel = if is_delta {
                    ctx.deltas.get(relation.as_str()).unwrap_or(&empty)
                } else {
                    relations.get(relation.as_str()).unwrap_or(&empty)
                };
                ctx.tally
                    .rows_scanned
                    .fetch_add(rel.len() as u64, Ordering::Relaxed);
                let span = tr
                    .trace
                    .open(tr.parent, SpanKind::Join, || format!("scan {relation}"));
                // Deltas share their relation's name but mutate between
                // rounds, so only full-relation scans hit the cache.
                let joined = match ctx.indexes.filter(|_| !is_delta) {
                    Some(cache) => {
                        scan_join_indexed(plan, rows, rel, terms, relation, &mut cache.borrow_mut())
                    }
                    None => scan_join(plan, rows, rel, terms, relation),
                };
                tr.trace.close(span);
                rows = joined?;
            }
            Step::Ie {
                function,
                inputs,
                outputs,
            } => {
                // IE calls are where evaluation sinks open-ended time
                // (user code, regex scans), so the wall-clock budget is
                // re-checked at every batch boundary.
                if let Some(d) = ctx.deadline {
                    d.check(Some(plan))?;
                }
                let f = ctx.registry.ie(function)?.clone();
                // Batch rows by their concrete argument tuple:
                // *cacheable* IE functions are stateless, so each
                // distinct tuple is invoked (or memo-probed) exactly
                // once even when many binding rows agree on the inputs.
                // Uncacheable functions keep one call per row — their
                // whole point is that repeated calls may differ.
                let batch = f.cacheable();
                let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
                let mut by_args: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
                for row in rows {
                    let mut args: Vec<Value> = Vec::with_capacity(inputs.len());
                    for t in inputs {
                        args.push(match t {
                            PTerm::Var(v) => row[*v].clone().ok_or_else(|| {
                                internal(
                                    plan,
                                    format!(
                                        "input {} of IE function {function:?} is unbound",
                                        var_name(plan, *v)
                                    ),
                                )
                            })?,
                            PTerm::Const(c) => c.clone(),
                            PTerm::Wildcard => {
                                return Err(internal(
                                    plan,
                                    format!("wildcard input to IE function {function:?}"),
                                ))
                            }
                        });
                    }
                    match by_args.get(&args).filter(|_| batch) {
                        Some(&g) => groups[g].1.push(row),
                        None => {
                            if batch {
                                by_args.insert(args.clone(), groups.len());
                            }
                            groups.push((args, vec![row]));
                        }
                    }
                }
                ctx.tally.ie_batches.fetch_add(1, Ordering::Relaxed);
                let span = tr.trace.open(tr.parent, SpanKind::IeBatch, || {
                    format!("{function} ×{}", groups.len())
                });
                // Error paths may leak `span`; RunTrace::finish (and,
                // on shard forks, merge_fork) closes leaked spans at
                // the abort timestamp.
                let next = match ctx.par.filter(|_| batch && groups.len() >= 2) {
                    Some(par) => {
                        ie_groups_parallel(function, &*f, outputs, groups, par, ctx.cache, tr)?
                    }
                    None => {
                        let mut next = Vec::new();
                        for (args, group_rows) in groups {
                            let t0 = tr.trace.now_ns();
                            let (out_rows, memo_hit) = cached_ie_call(
                                &*f,
                                function,
                                &args,
                                outputs.len(),
                                docs,
                                ctx.cache,
                            )?;
                            tr.trace.ie_call(function, memo_hit, t0);
                            check_output_arity(function, outputs.len(), &out_rows)?;
                            for row in group_rows {
                                for out in out_rows.iter() {
                                    if let Some(extended) = unify_values(&row, outputs, out) {
                                        next.push(extended);
                                    }
                                }
                            }
                        }
                        next
                    }
                };
                tr.trace.close(span);
                rows = dedupe(next);
            }
            Step::Negation { relation, terms } => {
                let rel = relations.get(relation.as_str()).unwrap_or(&empty);
                rows.retain(|row| !exists_match(rel, terms, row));
            }
            Step::Compare { left, op, right } => {
                let mut filtered = Vec::with_capacity(rows.len());
                for row in rows {
                    let keep = {
                        let a = term_value(left, &row, plan)?;
                        let b = term_value(right, &row, plan)?;
                        compare(a, b, *op)?
                    };
                    if keep {
                        filtered.push(row);
                    }
                }
                rows = filtered;
            }
        }
    }
    Ok(rows)
}

/// Rejects IE outputs whose arity disagrees with the calling atom.
fn check_output_arity(function: &str, expected: usize, out_rows: &IeOutput) -> Result<()> {
    for out in out_rows.iter() {
        if out.len() != expected {
            return Err(EngineError::IeOutputArity {
                function: function.to_string(),
                expected,
                actual: out.len(),
            });
        }
    }
    Ok(())
}

/// Evaluates the distinct argument groups of one cacheable IE batch on
/// the pool: one memo probe for the whole batch, misses computed
/// concurrently (each worker locking the shared store only around
/// individual accesses), one memo insert for all results, and a serial
/// unify pass in group order so error precedence and row order match
/// the serial path exactly.
fn ie_groups_parallel(
    function: &str,
    f: &dyn IeFunction,
    outputs: &[PTerm],
    groups: Vec<(Vec<Value>, Vec<Row>)>,
    par: ParExec<'_>,
    cache: Option<&SharedIeMemo>,
    tr: &mut TraceCtx<'_>,
) -> Result<Vec<Row>> {
    type Slot = Option<(Result<Arc<IeOutput>>, Option<bool>, u64)>;
    let n_outputs = outputs.len();
    let keys: Option<Vec<MemoKey>> = cache.map(|_| {
        groups
            .iter()
            .map(|(args, _)| MemoKey::new(function, args, n_outputs))
            .collect()
    });
    let mut slots: Vec<Slot> = match (cache, &keys) {
        (Some(c), Some(keys)) => c
            .lock()
            .get_batch(keys)
            .into_iter()
            .map(|hit| hit.map(|out| (Ok(out), Some(true), 0)))
            .collect(),
        _ => (0..groups.len()).map(|_| None).collect(),
    };
    let memoized = cache.is_some();
    let mut misses: Vec<(&mut Slot, &Vec<Value>)> = slots
        .iter_mut()
        .zip(&groups)
        .filter(|(slot, _)| slot.is_none())
        .map(|(slot, (args, _))| (slot, args))
        .collect();
    if !misses.is_empty() {
        // Coarse tasks: one per ~equal share of the misses, at most two
        // per worker — per-call spawning would swamp cheap IE calls in
        // scheduling cost.
        let chunk = misses
            .len()
            .div_ceil(par.pool.workers().saturating_mul(2).max(1));
        par.pool.scope(|s| {
            for chunk in misses.chunks_mut(chunk) {
                s.spawn(move || {
                    for (slot, args) in chunk {
                        let t0 = Instant::now();
                        let mut ie_ctx = IeContext::shared(par.docs);
                        let res = f.call(args, n_outputs, &mut ie_ctx).map(Arc::new);
                        let memo_hit = if memoized { Some(false) } else { None };
                        **slot = Some((res, memo_hit, t0.elapsed().as_nanos() as u64));
                    }
                });
            }
        });
    }
    if let (Some(c), Some(keys)) = (cache, keys) {
        // Memo lock first, docs lock (inside the byte-charging closure)
        // second — the same order as `cached_ie_call`.
        let computed = keys
            .into_iter()
            .zip(&slots)
            .filter_map(|(k, slot)| match slot {
                Some((Ok(out), Some(false), _)) => Some((k, out.clone())),
                _ => None,
            });
        c.lock().insert_batch(computed, |id| {
            par.docs.read().resolve(id).map(|t| t.len()).unwrap_or(0)
        });
    }
    let mut next = Vec::new();
    for ((_args, group_rows), slot) in groups.into_iter().zip(slots) {
        let (res, memo_hit, dur_ns) = slot.expect("pool scope computed every group");
        tr.trace.ie_call_ns(function, memo_hit, dur_ns);
        let out_rows = res?;
        check_output_arity(function, n_outputs, &out_rows)?;
        for row in group_rows {
            for out in out_rows.iter() {
                if let Some(extended) = unify_values(&row, outputs, out) {
                    next.push(extended);
                }
            }
        }
    }
    Ok(next)
}

/// The shard decision bundle handed to [`run_sharded`], keeping its
/// signature within clippy's argument budget.
struct ShardExec<'a> {
    par: ParExec<'a>,
    doc_var: usize,
}

/// Runs the post-split suffix of a split-correct rule shard-parallel:
/// partitions `rows` on the document variable, forks a trace per shard,
/// evaluates each shard on the pool (sharing the locked document
/// store), and merges results and traces back in shard index order.
/// The first shard error (in that stable order) wins, matching the
/// serial path's error determinism.
fn run_sharded(
    plan: &RulePlan,
    suffix: &[usize],
    rows: Vec<Row>,
    relations: &FxHashMap<String, Relation>,
    ctx: &ExecCtx<'_>,
    tr: &mut TraceCtx<'_>,
    shard: ShardExec<'_>,
) -> Result<Vec<Row>> {
    let ShardExec { par, doc_var } = shard;
    if suffix.is_empty() {
        return Ok(rows);
    }
    let mut bins = partition_rows(
        rows,
        doc_var,
        par.docs,
        par.pool.workers().saturating_mul(2),
    );
    if bins.len() <= 1 {
        let rows = bins.pop().unwrap_or_default();
        let mut handle = DocsHandle::Shared(par.docs);
        return run_steps(plan, suffix, rows, relations, &mut handle, ctx, tr);
    }
    ctx.tally
        .shard_tasks
        .fetch_add(bins.len() as u64, Ordering::Relaxed);
    // Shard tasks must not capture `ctx` itself: its index-cache handle
    // is single-threaded by design (`RefCell`), so the relevant fields
    // are rebundled per shard with `indexes: None, par: None`.
    let registry = ctx.registry;
    let delta_at = ctx.delta_at;
    let deltas = ctx.deltas;
    let cache = ctx.cache;
    let planner = ctx.planner;
    let tally = ctx.tally;
    let deadline = ctx.deadline;
    let mut slots: Vec<Option<(Result<Vec<Row>>, RunTrace)>> =
        (0..bins.len()).map(|_| None).collect();
    par.pool.scope(|s| {
        for (i, (slot, bin)) in slots.iter_mut().zip(bins).enumerate() {
            let mut fork = tr.trace.fork();
            s.spawn(move || {
                let span = fork.open(NO_SPAN, SpanKind::Shard, || {
                    format!("shard {i} ({} rows)", bin.len())
                });
                let shard_ctx = ExecCtx {
                    registry,
                    delta_at,
                    deltas,
                    cache,
                    planner,
                    indexes: None,
                    par: None,
                    tally,
                    deadline,
                };
                let mut shard_tr = TraceCtx {
                    trace: &mut fork,
                    rule: 0,
                    parent: span,
                };
                let res = run_steps(
                    plan,
                    suffix,
                    bin,
                    relations,
                    &mut DocsHandle::Shared(par.docs),
                    &shard_ctx,
                    &mut shard_tr,
                );
                fork.close(span);
                *slot = Some((res, fork));
            });
        }
    });
    let mut merged: Vec<Row> = Vec::new();
    let mut first_err: Option<EngineError> = None;
    for slot in slots {
        let (res, fork) = slot.expect("pool scope ran every shard task");
        tr.trace.merge_fork(tr.rule, tr.parent, fork);
        match res {
            Ok(rows) if first_err.is_none() => merged.extend(rows),
            Err(e) if first_err.is_none() => first_err = Some(e),
            _ => {}
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(dedupe(merged)),
    }
}

/// Partitions binding rows on the document variable for shard-parallel
/// execution. When every row binds the variable to a span, the store's
/// balanced byte-weight shards drive the split (stable document-id
/// order); any other value mix falls back to greedy weight-balanced
/// binning keyed on the value itself, so rows over the same document
/// always land in the same shard.
fn partition_rows(
    rows: Vec<Row>,
    doc_var: usize,
    docs: &SharedDocs,
    target: usize,
) -> Vec<Vec<Row>> {
    if target <= 1 || rows.len() <= 1 {
        return vec![rows];
    }
    let all_spans = rows
        .iter()
        .all(|r| matches!(r.get(doc_var), Some(Some(Value::Span(_)))));
    if all_spans {
        let shards = docs.read().shards(target);
        if shards.len() > 1 {
            let mut bins: Vec<Vec<Row>> = (0..shards.len()).map(|_| Vec::new()).collect();
            for row in rows {
                let Some(Value::Span(span)) = &row[doc_var] else {
                    unreachable!("all_spans checked above");
                };
                let slot = shards
                    .iter()
                    .position(|s| s.contains(span.doc))
                    .unwrap_or(0);
                bins[slot].push(row);
            }
            bins.retain(|b| !b.is_empty());
            return bins;
        }
        // A store too small to split (e.g. one huge document) falls
        // through to value-keyed binning over the span values.
    }
    // Group rows by the document variable's value, then greedily pack
    // each group into the lightest bin (deterministic: groups keep
    // first-appearance order, ties prefer the lowest bin index).
    let mut group_of: FxHashMap<Option<Value>, usize> = FxHashMap::default();
    let mut groups: Vec<(u64, Vec<Row>)> = Vec::new();
    for row in rows {
        let key = row.get(doc_var).cloned().flatten();
        let g = match group_of.get(&key) {
            Some(&g) => g,
            None => {
                let weight = match &key {
                    Some(Value::Str(s)) => s.len() as u64,
                    Some(Value::Span(s)) => s.len() as u64,
                    _ => 1,
                }
                .max(1);
                group_of.insert(key, groups.len());
                groups.push((weight, Vec::new()));
                groups.len() - 1
            }
        };
        groups[g].1.push(row);
    }
    let n = target.min(groups.len());
    let mut bins: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
    let mut weights = vec![0u64; n];
    for (w, group_rows) in groups {
        let lightest = (0..n).min_by_key(|&i| (weights[i], i)).expect("n >= 1");
        weights[lightest] += w;
        bins[lightest].extend(group_rows);
    }
    bins.retain(|b| !b.is_empty());
    bins
}

/// A structured "the plan violated a binding invariant" error — the
/// degradation path for malformed plans that safety analysis would
/// never produce.
fn internal(plan: &RulePlan, detail: String) -> EngineError {
    EngineError::Internal {
        rule: if plan.source.is_empty() {
            plan.head_predicate.clone()
        } else {
            plan.source.clone()
        },
        detail,
    }
}

/// Variable name for diagnostics; tolerates out-of-range indexes.
fn var_name(plan: &RulePlan, v: usize) -> String {
    match plan.var_names.get(v) {
        Some(name) => format!("{name:?}"),
        None => format!("#{v}"),
    }
}

/// One cheap pass over the plan so every raw `row[v]` index below is in
/// range: a malformed plan (variable index past the variable table)
/// degrades to [`EngineError::Internal`] instead of an index panic.
fn validate_var_indexes(plan: &RulePlan) -> Result<()> {
    let n = plan.var_names.len();
    let check = |terms: &[PTerm]| -> Result<()> {
        for t in terms {
            if let PTerm::Var(v) = t {
                if *v >= n {
                    return Err(internal(
                        plan,
                        format!("variable index {v} out of range ({n} variables)"),
                    ));
                }
            }
        }
        Ok(())
    };
    for step in &plan.steps {
        match step {
            Step::Scan { terms, .. } | Step::Negation { terms, .. } => check(terms)?,
            Step::Ie {
                inputs, outputs, ..
            } => {
                check(inputs)?;
                check(outputs)?;
            }
            Step::Compare { left, op: _, right } => {
                check(std::slice::from_ref(left))?;
                check(std::slice::from_ref(right))?;
            }
        }
    }
    for h in &plan.head {
        let v = match h {
            HeadOut::Var(v) | HeadOut::Aggregate { var: v, .. } => *v,
            HeadOut::Const(_) => continue,
        };
        if v >= n {
            return Err(internal(
                plan,
                format!("head variable index {v} out of range ({n} variables)"),
            ));
        }
    }
    Ok(())
}

fn term_value<'r>(t: &'r PTerm, row: &'r Row, plan: &RulePlan) -> Result<&'r Value> {
    match t {
        PTerm::Var(v) => row[*v].as_ref().ok_or_else(|| {
            internal(
                plan,
                format!("comparison operand {} is unbound", var_name(plan, *v)),
            )
        }),
        PTerm::Const(c) => Ok(c),
        PTerm::Wildcard => Err(internal(plan, "wildcard comparison operand".to_string())),
    }
}

fn compare(a: &Value, b: &Value, op: CmpOp) -> Result<bool> {
    use std::cmp::Ordering;
    let ord: Ordering = match (a, b) {
        // Numeric cross-type comparison promotes to float.
        (Value::Int(x), Value::Float(y)) => (*x as f64).total_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.total_cmp(&(*y as f64)),
        _ if a.value_type() == b.value_type() => a.cmp(b),
        _ => {
            // Eq/Neq across types are well-defined (always unequal);
            // ordering across types is a type error.
            return match op {
                CmpOp::Eq => Ok(false),
                CmpOp::Neq => Ok(true),
                _ => Err(EngineError::Incomparable {
                    left: a.value_type(),
                    right: b.value_type(),
                }),
            };
        }
    };
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Neq => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

/// Hash join of binding rows with a relation.
///
/// Columns whose term is a constant or an already-bound variable form the
/// join key; remaining variable columns bind new variables (repeated new
/// variables unify left-to-right). The bound-variable set is uniform
/// across rows at any step, so it is read off the first row.
fn scan_join(
    plan: &RulePlan,
    rows: Vec<Row>,
    rel: &Relation,
    terms: &[PTerm],
    relation: &str,
) -> Result<Vec<Row>> {
    let key_cols = join_key_cols(&rows[0], terms);

    // Build an index over relation tuples keyed by the join columns.
    let mut index: FxHashMap<Vec<&Value>, Vec<&Tuple>> = FxHashMap::default();
    'tuples: for tuple in rel.iter() {
        if tuple.arity() != terms.len() {
            return Err(EngineError::Arity {
                relation: relation.to_string(),
                expected: terms.len(),
                actual: tuple.arity(),
            });
        }
        for &c in &key_cols {
            if let PTerm::Const(v) = &terms[c] {
                if &tuple[c] != v {
                    continue 'tuples;
                }
            }
        }
        let key: Vec<&Value> = key_cols.iter().map(|&c| &tuple[c]).collect();
        index.entry(key).or_default().push(tuple);
    }

    let mut out = Vec::new();
    for row in &rows {
        let mut key: Vec<&Value> = Vec::with_capacity(key_cols.len());
        for &c in &key_cols {
            key.push(match &terms[c] {
                PTerm::Const(v) => v,
                PTerm::Var(v) => row[*v]
                    .as_ref()
                    .ok_or_else(|| join_key_unbound(plan, relation, &terms[c]))?,
                PTerm::Wildcard => return Err(join_key_unbound(plan, relation, &terms[c])),
            });
        }
        let Some(candidates) = index.get(&key) else {
            continue;
        };
        for tuple in candidates {
            if let Some(extended) = unify_values(row, terms, tuple.values()) {
                out.push(extended);
            }
        }
    }
    Ok(dedupe(out))
}

/// The join-key columns of a scan: constants plus already-bound
/// variables. The bound-variable set is uniform across rows at any
/// step, so it is read off `first`.
fn join_key_cols(first: &Row, terms: &[PTerm]) -> Vec<usize> {
    let mut key_cols: Vec<usize> = Vec::new();
    for (c, t) in terms.iter().enumerate() {
        match t {
            PTerm::Const(_) => key_cols.push(c),
            PTerm::Var(v) if first[*v].is_some() => key_cols.push(c),
            _ => {}
        }
    }
    key_cols
}

fn join_key_unbound(plan: &RulePlan, relation: &str, t: &PTerm) -> EngineError {
    let what = match t {
        PTerm::Var(v) => format!("variable {}", var_name(plan, *v)),
        _ => "wildcard".to_string(),
    };
    internal(
        plan,
        format!("join key {what} of scan over {relation:?} is unbound"),
    )
}

/// [`scan_join`] against the per-evaluation [`IndexCache`]: the index
/// is owned (keys cloned, `Arc`-backed values so clones are cheap) and
/// keyed by `(relation, row count, key columns)`, making it reusable
/// across fixpoint rounds and sibling rules — including rules that
/// filter the same columns with *different* constants, since constants
/// participate as ordinary key columns.
fn scan_join_indexed(
    plan: &RulePlan,
    rows: Vec<Row>,
    rel: &Relation,
    terms: &[PTerm],
    relation: &str,
    cache: &mut IndexCache,
) -> Result<Vec<Row>> {
    if rel.is_empty() {
        return Ok(Vec::new());
    }
    let key_cols = join_key_cols(&rows[0], terms);

    let index: Rc<TupleIndex> = match cache.lookup(relation, rel.len(), &key_cols) {
        Some(ix) => ix,
        None => {
            let mut map: FxHashMap<Vec<Value>, Vec<Tuple>> = FxHashMap::default();
            for tuple in rel.iter() {
                if tuple.arity() != terms.len() {
                    return Err(EngineError::Arity {
                        relation: relation.to_string(),
                        expected: terms.len(),
                        actual: tuple.arity(),
                    });
                }
                let key: Vec<Value> = key_cols.iter().map(|&c| tuple[c].clone()).collect();
                map.entry(key).or_default().push(tuple.clone());
            }
            let ix = Rc::new(TupleIndex {
                arity: terms.len(),
                map,
            });
            cache.store(relation, rel.len(), key_cols.clone(), ix.clone());
            ix
        }
    };
    // A cache hit with a different term count is the arity-mismatch
    // case the build path reports; surface the same error.
    if index.arity != terms.len() {
        return Err(EngineError::Arity {
            relation: relation.to_string(),
            expected: terms.len(),
            actual: index.arity,
        });
    }

    let mut out = Vec::new();
    for row in &rows {
        let mut key: Vec<Value> = Vec::with_capacity(key_cols.len());
        for &c in &key_cols {
            key.push(match &terms[c] {
                PTerm::Const(v) => v.clone(),
                PTerm::Var(v) => row[*v]
                    .clone()
                    .ok_or_else(|| join_key_unbound(plan, relation, &terms[c]))?,
                PTerm::Wildcard => return Err(join_key_unbound(plan, relation, &terms[c])),
            });
        }
        let Some(candidates) = index.map.get(&key) else {
            continue;
        };
        for tuple in candidates {
            if let Some(extended) = unify_values(row, terms, tuple.values()) {
                out.push(extended);
            }
        }
    }
    Ok(dedupe(out))
}

/// Unifies concrete `values` against `terms`, extending `row` where a
/// variable is unbound and filtering where it is bound or constant.
fn unify_values(row: &Row, terms: &[PTerm], values: &[Value]) -> Option<Row> {
    let mut extended = row.clone();
    for (c, t) in terms.iter().enumerate() {
        match t {
            PTerm::Wildcard => {}
            PTerm::Const(v) => {
                if &values[c] != v {
                    return None;
                }
            }
            PTerm::Var(v) => match &extended[*v] {
                Some(existing) => {
                    if existing != &values[c] {
                        return None;
                    }
                }
                None => extended[*v] = Some(values[c].clone()),
            },
        }
    }
    Some(extended)
}

fn exists_match(rel: &Relation, terms: &[PTerm], row: &Row) -> bool {
    rel.iter().any(|tuple| {
        tuple.arity() == terms.len()
            && terms.iter().enumerate().all(|(c, t)| match t {
                PTerm::Wildcard => true,
                PTerm::Const(v) => &tuple[c] == v,
                PTerm::Var(v) => Some(&tuple[c]) == row[*v].as_ref(),
            })
    })
}

fn dedupe(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

/// Projects binding rows through the head, grouping if any aggregate
/// column is present.
fn project_head(
    plan: &RulePlan,
    rows: Vec<Row>,
    docs: &mut DocsHandle<'_>,
    registry: &Registry,
) -> Result<Vec<Tuple>> {
    let var_value = |row: &Row, v: usize| -> Result<Value> {
        row[v].clone().ok_or_else(|| {
            internal(
                plan,
                format!("head variable {} is unbound", var_name(plan, v)),
            )
        })
    };

    if !plan.has_aggregation() {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut values = Vec::with_capacity(plan.head.len());
            for h in &plan.head {
                values.push(match h {
                    HeadOut::Var(v) => var_value(&row, *v)?,
                    HeadOut::Const(c) => c.clone(),
                    HeadOut::Aggregate { .. } => {
                        return Err(internal(
                            plan,
                            "aggregate head column outside the group-by path".to_string(),
                        ))
                    }
                });
            }
            out.push(Tuple::new(values));
        }
        return Ok(out);
    }

    // Group-by: key = non-aggregate head columns; each aggregate folds
    // the distinct (key, agg-vars) projections (set semantics — see
    // DESIGN.md §4 "aggregation semantics").
    let agg_vars: Vec<usize> = plan
        .head
        .iter()
        .filter_map(|h| match h {
            HeadOut::Aggregate { var, .. } => Some(*var),
            _ => None,
        })
        .collect();

    let mut groups: FxHashMap<Vec<Value>, Vec<Vec<Value>>> = FxHashMap::default();
    let mut seen: FxHashSet<(Vec<Value>, Vec<Value>)> = FxHashSet::default();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    for row in &rows {
        let mut key: Vec<Value> = Vec::with_capacity(plan.head.len());
        for h in &plan.head {
            match h {
                HeadOut::Var(v) => key.push(var_value(row, *v)?),
                HeadOut::Const(c) => key.push(c.clone()),
                HeadOut::Aggregate { .. } => {}
            }
        }
        let aggs: Vec<Value> = agg_vars
            .iter()
            .map(|&v| var_value(row, v))
            .collect::<Result<_>>()?;
        if seen.insert((key.clone(), aggs.clone())) {
            if !groups.contains_key(&key) {
                group_order.push(key.clone());
            }
            groups.entry(key).or_default().push(aggs);
        }
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in group_order {
        let members = &groups[&key];
        let mut tuple: Vec<Value> = Vec::with_capacity(plan.head.len());
        let mut key_iter = key.iter();
        let mut agg_idx = 0usize;
        for h in &plan.head {
            match h {
                HeadOut::Var(_) | HeadOut::Const(_) => {
                    let v = key_iter.next().ok_or_else(|| {
                        internal(plan, "group key shorter than head projection".to_string())
                    })?;
                    tuple.push(v.clone());
                }
                HeadOut::Aggregate {
                    func, conversions, ..
                } => {
                    let mut values: Vec<Value> =
                        members.iter().map(|m| m[agg_idx].clone()).collect();
                    // Conversions apply innermost-first; they are stored
                    // outermost-first as written.
                    for conv_name in conversions.iter().rev() {
                        let conv = registry.conversion(conv_name)?;
                        let ctx = IeContext::from_handle(docs.reborrow());
                        values = values
                            .iter()
                            .map(|v| conv.convert(v, &ctx))
                            .collect::<Result<_>>()?;
                    }
                    let agg = registry.aggregate(func)?;
                    tuple.push(agg.apply(&values)?);
                    agg_idx += 1;
                }
            }
        }
        out.push(Tuple::new(tuple));
    }
    Ok(out)
}
