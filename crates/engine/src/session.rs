//! The [`Session`]: the object that "facilitates communication between
//! the [host] and Spannerlog runtimes" (paper §3.2).
//!
//! A session owns the fact database, the rule set, and the IE registry.
//! Host code drives it with four verbs, mirroring the paper's API:
//!
//! * [`Session::import_dataframe`] — host table → engine relation;
//! * [`Session::run`] — execute a cell of Spannerlog source
//!   (declarations, facts, rules, queries);
//! * [`Session::export`] — evaluate a query, returning a `DataFrame`;
//! * [`Session::register`] — host closure → IE function callable from
//!   rules.
//!
//! Rules are evaluated lazily: the fixpoint recomputes when a query runs
//! after any mutation, and is cached until the next mutation.

use crate::database::Database;
use crate::eval::{evaluate, EvalStats, EvalStrategy};
use crate::error::{EngineError, Result};
use crate::ie::{IeContext, IeFunction, IeOutput};
use crate::query::run_query;
use crate::registry::Registry;
use crate::safety::{analyze, constant_value, SafetyContext};
use crate::strata::stratify;
use rustc_hash::FxHashSet;
use spannerlib_core::{DocId, DocumentStore, Relation, Schema, Span, Tuple, Value};
use spannerlib_dataframe::DataFrame;
use spannerlog_parser::{parse_program, Query, Rule, Statement};
use std::sync::Arc;

/// An embedded Spannerlog engine instance.
pub struct Session {
    db: Database,
    registry: Registry,
    rules: Vec<Rule>,
    strategy: EvalStrategy,
    dirty: bool,
    last_stats: EvalStats,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A fresh session with builtin IE functions and semi-naive
    /// evaluation.
    pub fn new() -> Session {
        Session::with_strategy(EvalStrategy::SemiNaive)
    }

    /// A fresh session with an explicit evaluation strategy (the naive
    /// strategy reproduces the paper's implementation; see ablation A).
    pub fn with_strategy(strategy: EvalStrategy) -> Session {
        Session {
            db: Database::new(),
            registry: Registry::new(),
            rules: Vec::new(),
            strategy,
            dirty: true,
            last_stats: EvalStats::default(),
        }
    }

    /// Switches the evaluation strategy; forces re-evaluation.
    pub fn set_strategy(&mut self, strategy: EvalStrategy) {
        self.strategy = strategy;
        self.dirty = true;
    }

    /// Statistics of the most recent fixpoint run.
    pub fn stats(&self) -> EvalStats {
        self.last_stats
    }

    // ------------------------------------------------------------------
    // Pillar 2: host → engine (import) and engine → host (export)
    // ------------------------------------------------------------------

    /// Imports a DataFrame as relation `name`, replacing any previous
    /// relation of that name (the paper's `session.import(df, name)`).
    pub fn import_dataframe(&mut self, df: &DataFrame, name: &str) -> Result<()> {
        self.db.put_relation(name, df.to_relation());
        self.dirty = true;
        Ok(())
    }

    /// Imports an already-built relation.
    pub fn import_relation(&mut self, name: &str, relation: Relation) {
        self.db.put_relation(name, relation);
        self.dirty = true;
    }

    /// Evaluates a query string (`?R(x, "c")`) and exports the result as
    /// a DataFrame (the paper's `session.export('?R(usr, "gmail")')`).
    pub fn export(&mut self, query_src: &str) -> Result<DataFrame> {
        let program = parse_program(query_src)?;
        let [Statement::Query(q)] = &program.statements[..] else {
            return Err(EngineError::NotAQuery(query_src.trim().to_string()));
        };
        let q = q.clone();
        self.ensure_evaluated()?;
        run_query(&self.db, &q)
    }

    /// Runs a cell of Spannerlog source. Declarations, facts, and rules
    /// mutate the session; queries evaluate eagerly and their results are
    /// returned in order.
    pub fn run(&mut self, source: &str) -> Result<Vec<(Query, DataFrame)>> {
        let program = parse_program(source)?;
        let mut outputs = Vec::new();
        for statement in program.statements {
            match statement {
                Statement::Declaration(d) => {
                    self.db.declare(&d.name, Schema::new(d.types.clone()))?;
                    self.dirty = true;
                }
                Statement::Fact(f) => {
                    self.add_fact_values(
                        &f.predicate,
                        f.values.iter().map(constant_value).collect(),
                    )?;
                }
                Statement::Rule(r) => {
                    self.rules.push(r);
                    self.dirty = true;
                }
                Statement::Query(q) => {
                    self.ensure_evaluated()?;
                    let df = run_query(&self.db, &q)?;
                    outputs.push((q, df));
                }
            }
        }
        Ok(outputs)
    }

    // ------------------------------------------------------------------
    // Pillar 3: registering host code as IE functions
    // ------------------------------------------------------------------

    /// Registers a closure as an IE function (the paper's
    /// `session.register(foo, input=…, output=…)`). `input_arity` of
    /// `None` means variadic.
    pub fn register<F>(&mut self, name: &str, input_arity: Option<usize>, f: F)
    where
        F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync + 'static,
    {
        self.registry.register_closure(name, input_arity, f);
        self.dirty = true;
    }

    /// Registers an IE function object.
    pub fn register_ie(&mut self, name: &str, f: Arc<dyn IeFunction>) {
        self.registry.register_ie(name, f);
        self.dirty = true;
    }

    /// Registers an aggregation function.
    pub fn register_aggregate(&mut self, name: &str, f: Arc<dyn crate::aggregate::AggFunction>) {
        self.registry.register_aggregate(name, f);
        self.dirty = true;
    }

    /// Registers a conversion function usable inside aggregation terms.
    pub fn register_conversion(&mut self, name: &str, f: Arc<dyn crate::aggregate::Conversion>) {
        self.registry.register_conversion(name, f);
        self.dirty = true;
    }

    /// The registry (read access, e.g. for direct IE invocation in tests).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    // ------------------------------------------------------------------
    // Direct fact/relation access
    // ------------------------------------------------------------------

    /// Declares a relation programmatically.
    pub fn declare(&mut self, name: &str, schema: Schema) -> Result<()> {
        self.db.declare(name, schema)?;
        self.dirty = true;
        Ok(())
    }

    /// Adds one fact programmatically.
    pub fn add_fact(&mut self, relation: &str, values: impl IntoIterator<Item = Value>) -> Result<()> {
        self.add_fact_values(relation, values.into_iter().collect())
    }

    fn add_fact_values(&mut self, relation: &str, values: Vec<Value>) -> Result<()> {
        if !self.db.is_extensional(relation) {
            return Err(EngineError::UnknownRelation(format!(
                "{relation} (declare it with `new {relation}(…)` before adding facts)"
            )));
        }
        let schema = self.db.relation(relation)?.schema().clone();
        let tuple = Tuple::new(values);
        if tuple.arity() != schema.arity() {
            return Err(EngineError::Arity {
                relation: relation.to_string(),
                expected: schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, (v, t)) in tuple.values().iter().zip(schema.types()).enumerate() {
            if v.value_type() != *t {
                return Err(EngineError::FactType {
                    relation: relation.to_string(),
                    column: i,
                    expected: *t,
                    actual: v.value_type(),
                });
            }
        }
        self.db.insert(relation, tuple)?;
        self.dirty = true;
        Ok(())
    }

    /// Reads a relation (evaluating pending rules first).
    pub fn relation(&mut self, name: &str) -> Result<Relation> {
        self.ensure_evaluated()?;
        Ok(self.db.relation_or_empty(name))
    }

    /// Exports a relation by name into a DataFrame with given column
    /// names.
    pub fn export_relation(&mut self, name: &str, columns: Vec<String>) -> Result<DataFrame> {
        let rel = self.relation(name)?;
        Ok(DataFrame::from_relation(columns, &rel)?)
    }

    // ------------------------------------------------------------------
    // Document store access (spans created by host code)
    // ------------------------------------------------------------------

    /// The session's document store.
    pub fn docs(&self) -> &DocumentStore {
        &self.db.docs
    }

    /// Interns a document, returning its id.
    pub fn intern(&mut self, text: &str) -> DocId {
        self.db.docs.intern(text)
    }

    /// Creates a checked span over an interned document.
    pub fn make_span(&self, doc: DocId, start: usize, end: usize) -> Result<Span> {
        Ok(self.db.docs.span(doc, start, end)?)
    }

    /// Resolves a span to its text.
    pub fn span_text(&self, span: &Span) -> Result<String> {
        Ok(self.db.docs.span_text(span)?.to_string())
    }

    // ------------------------------------------------------------------
    // Fixpoint
    // ------------------------------------------------------------------

    /// Forces evaluation now (queries call this implicitly).
    pub fn ensure_evaluated(&mut self) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        self.db.clear_derived();

        // Predicates that resolve to relations: extensional names plus
        // every rule head.
        let mut relation_names: FxHashSet<String> = self
            .db
            .iter()
            .map(|(name, _)| name.clone())
            .collect();
        for r in &self.rules {
            relation_names.insert(r.head_predicate.clone());
        }

        let ctx = SafetyContext {
            relations: &relation_names,
            registry: &self.registry,
        };
        let plans = self
            .rules
            .iter()
            .map(|r| analyze(r, &ctx))
            .collect::<Result<Vec<_>>>()?;
        let strata = stratify(plans)?;
        self.last_stats = evaluate(&mut self.db, &strata, &self.registry, self.strategy)?;
        self.dirty = false;
        Ok(())
    }

    /// Removes every rule (facts and registrations are kept).
    pub fn clear_rules(&mut self) {
        self.rules.clear();
        self.dirty = true;
    }

    /// Number of rules currently loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}
