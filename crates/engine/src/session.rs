//! The [`Session`]: the object that "facilitates communication between
//! the [host] and Spannerlog runtimes" (paper §3.2).
//!
//! A session owns the fact database, the rule set, and the IE registry.
//! The paper's four verbs still drive it, as thin wrappers over the
//! prepare/execute lifecycle:
//!
//! * [`Session::import_dataframe`] — host table → engine relation;
//! * [`Session::run`] — execute a cell of Spannerlog source
//!   (declarations, facts, rules, queries);
//! * [`Session::export`] — evaluate a query, returning a `DataFrame`;
//! * [`Session::register`] — host closure → IE function callable from
//!   rules.
//!
//! Serving paths use the layered lifecycle instead:
//!
//! 1. [`Session::builder`] configures strategy, resource limits, and
//!    seeds the IE registry;
//! 2. [`Session::prepare`] / [`Session::prepare_program`] run parse →
//!    safety analysis → IE sequencing → stratification → planning
//!    exactly once, yielding a [`PreparedQuery`] / [`PreparedProgram`];
//! 3. [`PreparedQuery::execute`] runs repeatedly against freshly
//!    imported relations — per-relation generation counters skip the
//!    fixpoint whenever no input relation changed;
//! 4. [`Session::snapshot`] freezes the evaluated state into a
//!    `Send + Sync` [`Snapshot`] for lock-free concurrent reads.
//!
//! # Threading contract
//!
//! One thread drives a session at a time; concurrency enters at two
//! deliberate seams. *Reads* scale through [`Session::snapshot`], which
//! freezes an evaluated database into a `Send + Sync` [`Snapshot`].
//! *Evaluation* scales through [`SessionBuilder::parallelism`]: rules
//! the compile-time split-correctness analysis clears (see
//! `CompiledProgram::shard_plan`) shard their firings by document
//! across an internal work-stealing pool (`spannerlib_par`), with the
//! document store behind a read-write lock and the IE memo behind its
//! usual mutex for the duration of the run. Parallel and serial runs
//! derive identical tuple *sets* (property-tested). Registered IE
//! functions must therefore be `Send + Sync` (the trait already
//! requires it) and must tolerate concurrent invocation on distinct
//! argument tuples. If an IE function panics on a worker thread, the
//! panic propagates to the driving thread after sibling shards drain,
//! and the session's document store may be left empty — treat a session
//! that panicked mid-evaluation as poisoned and discard it.

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::eval::{evaluate, EvalCtx, EvalLimits, EvalStats, EvalStrategy};
use crate::ie::{IeContext, IeFunction, IeOutput};
use crate::prepared::{
    parse_single_query, CompiledProgram, PreparedProgram, PreparedQuery, Snapshot,
};
use crate::query::run_query;
use crate::registry::Registry;
use crate::safety::constant_value;
use parking_lot::Mutex;
use spannerlib_cache::{CacheStats, DocGc, DocRefCounts, IeMemo, SharedIeMemo};
use spannerlib_core::{
    CompactionReport, DocId, DocumentStore, Relation, Schema, Span, Tuple, Value,
};
use spannerlib_dataframe::{DataFrame, FromRow, IntoRows};
use spannerlib_trace::{EvalProfile, RunTrace, TraceLevel, Tracer};
use spannerlog_parser::{parse_program, Query, Rule, Statement};
use std::sync::Arc;

/// Default byte budget of the IE memo table (see
/// [`SessionBuilder::ie_cache_capacity`]).
pub const DEFAULT_IE_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Statistics of a session: the most recent fixpoint run plus the
/// lifetime counters of the IE memo table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Counters of the most recent fixpoint run.
    pub eval: EvalStats,
    /// Lifetime IE-cache counters (all zero when the cache is disabled).
    pub cache: CacheStats,
}

/// Fingerprint of the last fixpoint run: which program, and the
/// generations its input relations had when it finished. Evaluation is
/// skipped while both still match.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EvalFingerprint {
    program_id: u64,
    input_gens: Vec<u64>,
}

/// Configures and builds a [`Session`]: evaluation strategy, resource
/// limits, and IE registry seeding, in one fluent pass.
///
/// ```
/// # use spannerlog_engine::{Session, EvalStrategy};
/// # use spannerlib_core::Value;
/// let mut session = Session::builder()
///     .strategy(EvalStrategy::SemiNaive)
///     .max_fixpoint_rounds(10_000)
///     .max_materialized_rows(1_000_000)
///     .register("shout", Some(1), |args, _ctx| {
///         let s = args[0].as_str().unwrap_or_default().to_uppercase();
///         Ok(vec![vec![Value::str(s)]])
///     })
///     .build();
/// # session.run("new S(str)").unwrap();
/// ```
pub struct SessionBuilder {
    strategy: EvalStrategy,
    limits: EvalLimits,
    registry: Registry,
    ie_cache_capacity: usize,
    doc_gc: DocGc,
    trace_level: TraceLevel,
    tracer: Option<Arc<dyn Tracer>>,
    trace_buffer_bytes: usize,
    planner: bool,
    parallelism: Option<usize>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            strategy: EvalStrategy::SemiNaive,
            limits: EvalLimits::default(),
            registry: Registry::new(),
            ie_cache_capacity: DEFAULT_IE_CACHE_BYTES,
            doc_gc: DocGc::Disabled,
            trace_level: TraceLevel::Off,
            tracer: None,
            trace_buffer_bytes: 0,
            planner: true,
            parallelism: None,
        }
    }
}

impl SessionBuilder {
    /// A builder with builtin IE functions and semi-naive evaluation.
    pub fn new() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Selects the fixpoint strategy (naive reproduces the paper's
    /// implementation; see ablation A).
    pub fn strategy(mut self, strategy: EvalStrategy) -> SessionBuilder {
        self.strategy = strategy;
        self
    }

    /// Bounds the number of fixpoint rounds per evaluation (guards
    /// runaway recursion in long-lived serving sessions).
    pub fn max_fixpoint_rounds(mut self, rounds: usize) -> SessionBuilder {
        self.limits.max_rounds = Some(rounds);
        self
    }

    /// Bounds the number of tuples one evaluation may materialize.
    pub fn max_materialized_rows(mut self, rows: usize) -> SessionBuilder {
        self.limits.max_rows = Some(rows);
        self
    }

    /// Bounds the wall-clock time of one evaluation, in milliseconds.
    /// The budget is anchored when the fixpoint starts and checked once
    /// per fixpoint round and once per IE batch; an overrun surfaces as
    /// [`EngineError::LimitExceeded`] naming the rule that was executing
    /// (resource `"eval wall-clock millis"`). This is the primitive
    /// per-request deadlines in a serving front end build on — see
    /// [`Session::set_max_eval_millis`] for adjusting the budget between
    /// runs.
    pub fn max_eval_millis(mut self, millis: u64) -> SessionBuilder {
        self.limits.max_millis = Some(millis);
        self
    }

    /// Sets the byte budget of the IE memo table, which caches
    /// `(function, arguments) → output rows` across fixpoint reruns and
    /// prepared-query executions ([`DEFAULT_IE_CACHE_BYTES`] by
    /// default). Pass `0` to disable cross-run memoization.
    ///
    /// Note that closures registered via [`SessionBuilder::register`]
    /// are held to the stateless IE contract regardless of this
    /// setting: within one rule firing, binding rows sharing an
    /// argument tuple are batched into a single call even with the
    /// cache off. A closure that is *not* a pure function of its
    /// arguments must be registered with
    /// [`SessionBuilder::register_uncached`], which opts it out of both
    /// memoization and batching.
    pub fn ie_cache_capacity(mut self, bytes: usize) -> SessionBuilder {
        self.ie_cache_capacity = bytes;
        self
    }

    /// Configures automatic document-store compaction. With
    /// [`DocGc::Threshold`], `remove_relation` and replacing imports
    /// trigger a compaction pass once live document text exceeds the
    /// watermark, tombstoning documents referenced by no relation and
    /// no memo entry. Default: [`DocGc::Disabled`] (compaction only via
    /// [`Session::compact_docs`]).
    pub fn doc_gc(mut self, policy: DocGc) -> SessionBuilder {
        self.doc_gc = policy;
        self
    }

    /// Sets how much each evaluation records ([`TraceLevel::Off`] by
    /// default): `Summary` produces an [`EvalProfile`] (per-rule and
    /// per-IE-function counters and wall times, read via
    /// [`Session::profile`]); `Spans` additionally records hierarchical
    /// timed span events into a byte-bounded ring buffer. At `Off` the
    /// evaluation hot path pays only a branch per instrumentation site.
    pub fn tracing(mut self, level: TraceLevel) -> SessionBuilder {
        self.trace_level = level;
        self
    }

    /// Attaches a long-lived [`Tracer`] sink: after every evaluation the
    /// session feeds it the run's span events and [`EvalProfile`]. The
    /// effective level of each run is the *maximum* of the builder's
    /// [`SessionBuilder::tracing`] level and the tracer's own
    /// [`Tracer::level`], so attaching e.g. a
    /// `RingTracer::new(TraceLevel::Spans, …)` turns recording on by
    /// itself.
    pub fn tracer(mut self, tracer: Arc<dyn Tracer>) -> SessionBuilder {
        self.tracer = Some(tracer);
        self
    }

    /// Toggles the cost-based query planner (on by default): per-firing
    /// join reordering by estimated cardinality and reuse of scan-join
    /// hash indexes across fixpoint rounds and rules. Planner-on and
    /// planner-off evaluations derive identical relations (property-
    /// tested); turning it off is an escape hatch for benchmarking
    /// (`planner_smoke` runs the A/B) or for debugging plans in textual
    /// atom order.
    pub fn planner(mut self, enabled: bool) -> SessionBuilder {
        self.planner = enabled;
        self
    }

    /// Sets the number of worker threads for split-correct parallel
    /// evaluation (default: the machine's available parallelism). Rule
    /// firings the compile-time analysis clears as split-correct are
    /// sharded by document across this many workers; `0` or `1` pins
    /// every evaluation to the serial path. The pool is built lazily,
    /// on the first evaluation of a program with at least one
    /// split-correct rule; parallel and serial evaluation derive
    /// identical tuple sets (property-tested). See the module docs'
    /// threading contract.
    pub fn parallelism(mut self, workers: usize) -> SessionBuilder {
        self.parallelism = Some(workers);
        self
    }

    /// Byte budget of the per-run span ring buffer (`0`, the default,
    /// selects `spannerlib_trace::DEFAULT_SPAN_BUFFER_BYTES`). Only
    /// relevant at [`TraceLevel::Spans`]; when the buffer fills, the
    /// *oldest* spans of the run are dropped first.
    pub fn trace_buffer_bytes(mut self, bytes: usize) -> SessionBuilder {
        self.trace_buffer_bytes = bytes;
        self
    }

    /// Seeds the IE registry with a closure (same contract as
    /// [`Session::register`]).
    pub fn register<F>(mut self, name: &str, input_arity: Option<usize>, f: F) -> SessionBuilder
    where
        F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync + 'static,
    {
        self.registry.register_closure(name, input_arity, f);
        self
    }

    /// Seeds the IE registry with a closure whose results must never be
    /// memoized (not a pure function of its arguments — clocks, RNGs,
    /// live external lookups).
    pub fn register_uncached<F>(
        mut self,
        name: &str,
        input_arity: Option<usize>,
        f: F,
    ) -> SessionBuilder
    where
        F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync + 'static,
    {
        self.registry
            .register_closure_uncached(name, input_arity, f);
        self
    }

    /// Seeds the IE registry with a function object.
    pub fn register_ie(mut self, name: &str, f: Arc<dyn IeFunction>) -> SessionBuilder {
        self.registry.register_ie(name, f);
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        let ie_cache = (self.ie_cache_capacity > 0)
            .then(|| Arc::new(Mutex::new(IeMemo::new(self.ie_cache_capacity))));
        Session {
            db: Arc::new(Database::new()),
            registry: self.registry,
            rules: Vec::new(),
            strategy: self.strategy,
            limits: self.limits,
            rules_gen: 0,
            compiled: None,
            last_eval: None,
            last_fingerprint: 0,
            last_stats: EvalStats::default(),
            ie_cache,
            doc_gc: self.doc_gc,
            gc_rearm_bytes: 0,
            trace_level: self.trace_level,
            tracer: self.tracer,
            trace_buffer_bytes: self.trace_buffer_bytes,
            last_profile: None,
            planner: self.planner,
            parallelism: self
                .parallelism
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
            pool: None,
            eval_seq: 0,
            pending_request_ids: Vec::new(),
        }
    }
}

/// An embedded Spannerlog engine instance.
pub struct Session {
    /// Copy-on-write: snapshots share this `Arc`; the first mutation
    /// after a snapshot clones the database once (`Arc::make_mut`), so
    /// `Session::snapshot` itself is O(1).
    db: Arc<Database>,
    registry: Registry,
    rules: Vec<Rule>,
    strategy: EvalStrategy,
    limits: EvalLimits,
    /// Bumped whenever the compiled program could change: rules added or
    /// cleared, registrations, or the set of known relation names.
    rules_gen: u64,
    /// Cache of the current rule set's compilation, keyed by `rules_gen`.
    compiled: Option<(u64, Arc<CompiledProgram>)>,
    /// Fingerprint of the last fixpoint run (replaces the old global
    /// `dirty` flag).
    last_eval: Option<EvalFingerprint>,
    /// Hash of `last_eval`, exposed through [`Snapshot::fingerprint`]
    /// for ETag-style version headers. Stable while evaluation is
    /// skipped; changes whenever a read relation's generation moved or
    /// the program recompiled.
    last_fingerprint: u64,
    last_stats: EvalStats,
    /// Memo table for IE calls (`None` = disabled). Shared with
    /// evaluation runs and snapshots; keyed purely by call content, so
    /// it survives program recompilation and EDB churn.
    ie_cache: Option<SharedIeMemo>,
    /// When to compact the document store automatically.
    doc_gc: DocGc,
    /// Hysteresis for the threshold policy: the next automatic pass
    /// arms only once resident bytes exceed this. Re-derived after
    /// every pass as `live bytes + configured threshold`, so a live set
    /// that permanently exceeds the watermark does not degenerate into
    /// a full no-op mark-and-sweep on every mutation.
    gc_rearm_bytes: usize,
    /// The session's own trace level knob ([`SessionBuilder::tracing`]).
    trace_level: TraceLevel,
    /// Optional long-lived telemetry sink; may raise the effective level.
    tracer: Option<Arc<dyn Tracer>>,
    /// Span ring-buffer budget per run (`0` = library default).
    trace_buffer_bytes: usize,
    /// Profile of the most recent fixpoint run (including aborted ones);
    /// `None` until a run happens with tracing at `Summary` or above.
    last_profile: Option<Arc<EvalProfile>>,
    /// Cost-based planner toggle ([`SessionBuilder::planner`]).
    planner: bool,
    /// Worker count for split-correct parallel evaluation
    /// ([`SessionBuilder::parallelism`]); `0`/`1` = serial.
    parallelism: usize,
    /// Lazily built work-stealing pool — `Some` after the first
    /// evaluation that had a split-correct rule to shard.
    pool: Option<spannerlib_par::ThreadPool>,
    /// Monotonic count of fixpoint runs actually executed (skipped
    /// evaluations do not bump it). Stamped onto each run's
    /// [`EvalProfile`] and onto snapshots, so serving layers can
    /// attribute a published result to the evaluation that produced it.
    eval_seq: u64,
    /// Request ids waiting to be attributed to the *next* fixpoint run
    /// ([`Session::set_request_ids`]). Consumed — attached or discarded
    /// — by the next `ensure_evaluated` call.
    pending_request_ids: Vec<String>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A fresh session with builtin IE functions and semi-naive
    /// evaluation.
    pub fn new() -> Session {
        Session::builder().build()
    }

    /// Starts configuring a session (strategy, limits, registry seeds).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// A fresh session with an explicit evaluation strategy (the naive
    /// strategy reproduces the paper's implementation; see ablation A).
    pub fn with_strategy(strategy: EvalStrategy) -> Session {
        Session::builder().strategy(strategy).build()
    }

    /// Switches the evaluation strategy; forces re-evaluation.
    pub fn set_strategy(&mut self, strategy: EvalStrategy) {
        self.strategy = strategy;
        self.last_eval = None;
    }

    /// Adjusts the wall-clock budget of *subsequent* evaluations (see
    /// [`SessionBuilder::max_eval_millis`]); `None` removes the limit.
    /// Serving front ends call this per request to turn a client
    /// deadline into an evaluation budget. Does not force
    /// re-evaluation: limits gate how long a run may take, not what it
    /// derives.
    pub fn set_max_eval_millis(&mut self, millis: Option<u64>) {
        self.limits.max_millis = millis;
    }

    /// Adjusts the materialized-row budget of subsequent evaluations
    /// (see [`SessionBuilder::max_materialized_rows`]); `None` removes
    /// the limit. Like [`Session::set_max_eval_millis`], never forces
    /// re-evaluation.
    pub fn set_max_materialized_rows(&mut self, rows: Option<usize>) {
        self.limits.max_rows = rows;
    }

    /// Statistics of the session, without resetting anything. The two
    /// halves deliberately cover different windows:
    ///
    /// * `eval` describes only the **most recent** fixpoint run (all
    ///   zero if evaluation was skipped because nothing changed);
    /// * `cache` is **cumulative over the session's lifetime** (the memo
    ///   table outlives individual runs by design).
    ///
    /// Use [`Session::take_stats`] for a read that also resets both
    /// windows, e.g. to meter individual requests in a serving loop.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            eval: self.last_stats,
            cache: self.cache_stats(),
        }
    }

    /// Returns the current [`SessionStats`] and resets both halves in
    /// the same call: the eval counters go back to zero and the IE
    /// cache's lifetime counters restart (resident `entries`/`bytes`
    /// are *kept* — they describe state, not activity). Two consecutive
    /// `take_stats` calls with no evaluation in between therefore
    /// return activity counters of zero.
    pub fn take_stats(&mut self) -> SessionStats {
        SessionStats {
            eval: std::mem::take(&mut self.last_stats),
            cache: self
                .ie_cache
                .as_ref()
                .map(|c| c.lock().take_stats())
                .unwrap_or_default(),
        }
    }

    /// Profile of the most recent fixpoint run — per-rule wall times,
    /// firings, tuple counts, join rows scanned, and per-IE-function
    /// call/memo/latency statistics. `None` until a run happens with
    /// tracing enabled (see [`SessionBuilder::tracing`]). An aborted run
    /// (limit exceeded) still leaves its partial profile here, with
    /// [`EvalProfile::error`] set. Skipped evaluations (unchanged
    /// inputs) keep the previous profile.
    pub fn profile(&self) -> Option<Arc<EvalProfile>> {
        self.last_profile.clone()
    }

    /// Changes the trace level of subsequent evaluations and forces the
    /// next query to re-evaluate (so a freshly enabled level yields a
    /// profile without requiring an input mutation).
    pub fn set_tracing(&mut self, level: TraceLevel) {
        if self.trace_level != level {
            self.trace_level = level;
            self.last_eval = None;
        }
    }

    /// The sequence number of the most recent fixpoint run — zero
    /// before the first run, bumped only when evaluation actually
    /// executes (fingerprint-skipped calls keep the number).
    pub fn eval_seq(&self) -> u64 {
        self.eval_seq
    }

    /// Attributes the *next* fixpoint run to serving requests: `ids`
    /// land on that run's [`EvalProfile::request_ids`]. The pending set
    /// is consumed by the next `ensure_evaluated` call — attached if it
    /// evaluates, discarded if the fingerprint lets it skip (the
    /// requests were then served by already-current state and owe no
    /// evaluation). Outside a serving front end there is rarely a
    /// reason to call this.
    pub fn set_request_ids(&mut self, ids: Vec<String>) {
        self.pending_request_ids = ids;
    }

    /// Lifetime counters of the IE memo table (all zero when the cache
    /// is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.ie_cache
            .as_ref()
            .map(|c| c.lock().stats())
            .unwrap_or_default()
    }

    /// Drops every memoized IE result (counters survive). Rarely needed
    /// — keys are content-addressed — but useful to release memory
    /// pinned by the cache in one step.
    pub fn clear_ie_cache(&mut self) {
        if let Some(cache) = &self.ie_cache {
            cache.lock().clear();
        }
    }

    /// Marks compile-relevant state (rules, registrations, relation name
    /// set) as changed.
    fn invalidate_program(&mut self) {
        self.rules_gen += 1;
        self.compiled = None;
    }

    // ------------------------------------------------------------------
    // Pillar 2: host → engine (import) and engine → host (export)
    // ------------------------------------------------------------------

    /// Imports a DataFrame as relation `name`, replacing any previous
    /// relation of that name (the paper's `session.import(df, name)`).
    ///
    /// Replacing an existing relation with data of a *different schema*
    /// is rejected with [`EngineError::SchemaMismatch`] — dependent
    /// rules and prepared programs were planned against the old shape.
    pub fn import_dataframe(&mut self, df: &DataFrame, name: &str) -> Result<()> {
        self.import_relation(name, df.to_relation())
    }

    /// Imports an already-built relation (same schema rules as
    /// [`Session::import_dataframe`]).
    pub fn import_relation(&mut self, name: &str, relation: Relation) -> Result<()> {
        if let Some(existing) = self.db.extensional_schema(name) {
            if existing != relation.schema() {
                return Err(EngineError::SchemaMismatch {
                    relation: name.to_string(),
                    expected: existing.to_string(),
                    actual: relation.schema().to_string(),
                });
            }
        } else {
            // A brand-new name can resolve predicates differently, and a
            // name that was only rule-derived until now becomes
            // extensional — either way the compiled program's view of
            // the EDB changes.
            self.invalidate_program();
        }
        self.db_mut().put_relation(name, relation);
        self.maybe_compact_docs();
        Ok(())
    }

    /// Imports typed host rows as relation `name` — the symmetric
    /// counterpart of [`Session::export_typed`]. The schema is taken
    /// from the first row; an empty import requires the relation to
    /// already exist (it is then cleared).
    pub fn import_typed<R: IntoRows>(&mut self, name: &str, rows: R) -> Result<()> {
        let rows = rows.into_rows();
        let Some(first) = rows.first() else {
            let Some(schema) = self.db.extensional_schema(name).cloned() else {
                return Err(EngineError::UnknownRelation(format!(
                    "{name} (an empty typed import needs an existing relation to take \
                     its schema from)"
                )));
            };
            return self.import_relation(name, Relation::new(schema));
        };
        let schema = Schema::new(first.iter().map(Value::value_type).collect::<Vec<_>>());
        let mut relation = Relation::new(schema);
        for row in rows {
            relation.insert(Tuple::new(row))?;
        }
        self.import_relation(name, relation)
    }

    /// Evaluates a query string (`?R(x, "c")`) and exports the result as
    /// a DataFrame (the paper's `session.export('?R(usr, "gmail")')`).
    ///
    /// Thin wrapper over the prepared lifecycle: equivalent to
    /// `self.prepare(query_src)?.execute(self)`, re-parsing the query
    /// each call. Serving paths should prepare once instead.
    pub fn export(&mut self, query_src: &str) -> Result<DataFrame> {
        let query = parse_single_query(query_src)?;
        self.ensure_evaluated()?;
        run_query(&self.db, &query)
    }

    /// Like [`Session::export`], converting each row into a typed host
    /// value via [`FromRow`]:
    /// `session.export_typed::<(String, i64)>("?Count(d, n)")`.
    pub fn export_typed<T: FromRow>(&mut self, query_src: &str) -> Result<Vec<T>> {
        Ok(self.export(query_src)?.to_typed()?)
    }

    /// Runs a cell of Spannerlog source. Declarations, facts, and rules
    /// mutate the session; queries evaluate eagerly and their results are
    /// returned in order.
    pub fn run(&mut self, source: &str) -> Result<Vec<(Query, DataFrame)>> {
        let program = parse_program(source)?;
        let mut outputs = Vec::new();
        for statement in program.statements {
            match statement {
                Statement::Declaration(d) => {
                    self.db_mut()
                        .declare(&d.name, Schema::new(d.types.clone()))?;
                    self.invalidate_program();
                }
                Statement::Fact(f) => {
                    self.add_fact_values(
                        &f.predicate,
                        f.values.iter().map(constant_value).collect(),
                    )?;
                }
                Statement::Rule(r) => {
                    self.rules.push(r);
                    self.invalidate_program();
                }
                Statement::Query(q) => {
                    self.ensure_evaluated()?;
                    let df = run_query(&self.db, &q)?;
                    outputs.push((q, df));
                }
            }
        }
        Ok(outputs)
    }

    // ------------------------------------------------------------------
    // Prepare once, execute many
    // ------------------------------------------------------------------

    /// Compiles the current rule set — parse already happened in
    /// [`Session::run`]; this runs safety analysis (deriving IE
    /// execution order), stratification, and planning — and returns the
    /// artifact as a shareable [`PreparedProgram`].
    ///
    /// Unsafe rules and unstratifiable programs are rejected *here*,
    /// with source positions, before any data is processed. Relations
    /// the rules read must already be declared or imported (so the
    /// compiler can distinguish relation atoms from IE filters); their
    /// *content* may be re-imported freely between executions.
    pub fn prepare_program(&mut self) -> Result<PreparedProgram> {
        Ok(PreparedProgram {
            inner: self.program()?,
        })
    }

    /// Prepares one query: compiles the rules (cached per rule-set
    /// revision) and parses `query_src` once. The returned
    /// [`PreparedQuery`] executes repeatedly against freshly imported
    /// data without re-parsing, re-checking, or re-planning.
    pub fn prepare(&mut self, query_src: &str) -> Result<PreparedQuery> {
        self.prepare_program()?.query(query_src)
    }

    /// Freezes the evaluated state into an immutable, `Send + Sync`
    /// [`Snapshot`]. The snapshot runs prepared queries concurrently
    /// across threads; the session remains free to mutate afterwards —
    /// the two share no mutable state.
    pub fn snapshot(&mut self) -> Result<Snapshot> {
        self.ensure_evaluated()?;
        Ok(Snapshot::new(
            Arc::clone(&self.db),
            self.ie_cache.clone(),
            self.last_profile.clone(),
            self.last_fingerprint,
            self.eval_seq,
        ))
    }

    /// The compiled program for the current rule set (cached until the
    /// rules, registrations, or relation name set change).
    fn program(&mut self) -> Result<Arc<CompiledProgram>> {
        if let Some((gen, program)) = &self.compiled {
            if *gen == self.rules_gen {
                return Ok(program.clone());
            }
        }
        let program = Arc::new(CompiledProgram::compile(
            &self.rules,
            &self.db,
            &self.registry,
        )?);
        self.compiled = Some((self.rules_gen, program.clone()));
        Ok(program)
    }

    // ------------------------------------------------------------------
    // Pillar 3: registering host code as IE functions
    // ------------------------------------------------------------------

    /// Registers a closure as an IE function (the paper's
    /// `session.register(foo, input=…, output=…)`). `input_arity` of
    /// `None` means variadic. Results are memoized by the IE cache,
    /// which assumes the paper's stateless contract — use
    /// [`Session::register_uncached`] for closures that are not pure
    /// functions of their arguments.
    pub fn register<F>(&mut self, name: &str, input_arity: Option<usize>, f: F)
    where
        F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync + 'static,
    {
        self.registry.register_closure(name, input_arity, f);
        self.after_registration(name);
    }

    /// Registers a closure whose results must never be memoized.
    pub fn register_uncached<F>(&mut self, name: &str, input_arity: Option<usize>, f: F)
    where
        F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync + 'static,
    {
        self.registry
            .register_closure_uncached(name, input_arity, f);
        self.after_registration(name);
    }

    /// Registers an IE function object.
    pub fn register_ie(&mut self, name: &str, f: Arc<dyn IeFunction>) {
        self.registry.register_ie(name, f);
        self.after_registration(name);
    }

    /// A (re-)registration may shadow an existing function: memoized
    /// results under the old body are stale (entries of *other*
    /// functions stay warm), and the compiled program may resolve
    /// predicates differently.
    fn after_registration(&mut self, name: &str) {
        self.invalidate_program();
        if let Some(cache) = &self.ie_cache {
            cache.lock().purge_function(name);
        }
    }

    /// Registers an aggregation function.
    pub fn register_aggregate(&mut self, name: &str, f: Arc<dyn crate::aggregate::AggFunction>) {
        self.registry.register_aggregate(name, f);
        self.invalidate_program();
    }

    /// Registers a conversion function usable inside aggregation terms.
    pub fn register_conversion(&mut self, name: &str, f: Arc<dyn crate::aggregate::Conversion>) {
        self.registry.register_conversion(name, f);
        self.invalidate_program();
    }

    /// The registry (read access, e.g. for direct IE invocation in tests).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    // ------------------------------------------------------------------
    // Direct fact/relation access
    // ------------------------------------------------------------------

    /// Declares a relation programmatically.
    pub fn declare(&mut self, name: &str, schema: Schema) -> Result<()> {
        self.db_mut().declare(name, schema)?;
        self.invalidate_program();
        Ok(())
    }

    /// Removes a relation (facts and schema) so long-lived sessions can
    /// evict state instead of being rebuilt. Rules referencing it will
    /// fail to compile until it is re-declared or re-imported.
    ///
    /// Document texts interned by removed tuples are reclaimed by
    /// doc-store compaction: automatically under a
    /// [`SessionBuilder::doc_gc`] threshold policy, or explicitly via
    /// [`Session::compact_docs`].
    pub fn remove_relation(&mut self, name: &str) -> Result<()> {
        // Existence check before db_mut: Arc::make_mut would deep-clone
        // a snapshot-shared database just to fail.
        if !self.db.contains(name) {
            return Err(EngineError::UnknownRelation(name.to_string()));
        }
        self.db_mut().remove(name);
        self.invalidate_program();
        self.maybe_compact_docs();
        Ok(())
    }

    /// Removes every rule (facts and registrations are kept).
    pub fn clear_rules(&mut self) {
        self.rules.clear();
        self.invalidate_program();
    }

    /// Number of rules currently loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Adds one fact programmatically.
    pub fn add_fact(
        &mut self,
        relation: &str,
        values: impl IntoIterator<Item = Value>,
    ) -> Result<()> {
        self.add_fact_values(relation, values.into_iter().collect())
    }

    fn add_fact_values(&mut self, relation: &str, values: Vec<Value>) -> Result<()> {
        if !self.db.is_extensional(relation) {
            return Err(EngineError::UnknownRelation(format!(
                "{relation} (declare it with `new {relation}(…)` before adding facts)"
            )));
        }
        let schema = self.db.relation(relation)?.schema().clone();
        let tuple = Tuple::new(values);
        if tuple.arity() != schema.arity() {
            return Err(EngineError::Arity {
                relation: relation.to_string(),
                expected: schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, (v, t)) in tuple.values().iter().zip(schema.types()).enumerate() {
            if v.value_type() != *t {
                return Err(EngineError::FactType {
                    relation: relation.to_string(),
                    column: i,
                    expected: *t,
                    actual: v.value_type(),
                });
            }
        }
        self.db_mut().insert(relation, tuple)?;
        Ok(())
    }

    /// Reads a relation (evaluating pending rules first).
    pub fn relation(&mut self, name: &str) -> Result<Relation> {
        self.ensure_evaluated()?;
        Ok(self.db.relation_or_empty(name))
    }

    /// Exports a relation by name into a DataFrame with given column
    /// names.
    pub fn export_relation(&mut self, name: &str, columns: Vec<String>) -> Result<DataFrame> {
        let rel = self.relation(name)?;
        Ok(DataFrame::from_relation(columns, &rel)?)
    }

    // ------------------------------------------------------------------
    // Document store access (spans created by host code)
    // ------------------------------------------------------------------

    /// The session's document store.
    pub fn docs(&self) -> &DocumentStore {
        &self.db.docs
    }

    /// Interns a document, returning its id.
    pub fn intern(&mut self, text: &str) -> DocId {
        self.db_mut().docs.intern(text)
    }

    /// Creates a checked span over an interned document.
    pub fn make_span(&self, doc: DocId, start: usize, end: usize) -> Result<Span> {
        Ok(self.db.docs.span(doc, start, end)?)
    }

    /// Resolves a span to its text.
    pub fn span_text(&self, span: &Span) -> Result<String> {
        Ok(self.db.docs.span_text(span)?.to_string())
    }

    // ------------------------------------------------------------------
    // Document lifecycle
    // ------------------------------------------------------------------

    /// Compacts the document store now: documents referenced by no span
    /// in any relation (extensional or derived) and no resident IE-memo
    /// entry are tombstoned and their text released. Surviving ids are
    /// unchanged, so spans held by the host stay valid; the store's
    /// epoch is bumped. Snapshots taken earlier keep their own frozen
    /// store (copy-on-write).
    ///
    /// When everything is live the pass returns a zero report *without*
    /// touching the store — in particular, without forcing the
    /// copy-on-write database clone a live [`Snapshot`] would otherwise
    /// pay — and the epoch stays put.
    pub fn compact_docs(&mut self) -> CompactionReport {
        let mut refs = DocRefCounts::new();
        for (_, relation) in self.db.iter() {
            for tuple in relation.iter() {
                refs.retain_tuple(tuple);
            }
        }
        if let Some(cache) = &self.ie_cache {
            cache.lock().mark_doc_roots(&mut refs);
        }
        let docs = &self.db.docs;
        let report = if docs.iter().all(|(id, _)| refs.is_live(id)) {
            CompactionReport {
                epoch: docs.epoch(),
                removed_docs: 0,
                kept_docs: docs.len(),
                reclaimed_bytes: 0,
                live_bytes: docs.bytes(),
            }
        } else {
            self.db_mut().docs.compact(|id| refs.is_live(id))
        };
        if let DocGc::Threshold { bytes } = self.doc_gc {
            self.gc_rearm_bytes = report.live_bytes + bytes;
        }
        report
    }

    /// Runs a compaction pass if the configured [`DocGc`] policy says
    /// the store has outgrown its watermark — with hysteresis: after a
    /// pass, the next one arms only once resident bytes grow a full
    /// threshold past what survived. Called after eviction-shaped
    /// mutations (`remove_relation`, replacing imports).
    fn maybe_compact_docs(&mut self) {
        let bytes = self.db.docs.bytes();
        if self.doc_gc.should_compact(bytes) && bytes > self.gc_rearm_bytes {
            self.compact_docs();
        }
    }

    // ------------------------------------------------------------------
    // Fixpoint
    // ------------------------------------------------------------------

    /// Forces evaluation of the current rule set now (queries call this
    /// implicitly).
    pub fn ensure_evaluated(&mut self) -> Result<()> {
        let program = self.program()?;
        self.ensure_evaluated_with(&program)
    }

    /// Runs the fixpoint for `program` unless its fingerprint — the
    /// program identity plus the generations of every input relation —
    /// matches the previous run, in which case derived state is already
    /// current and the call is O(|inputs|).
    pub(crate) fn ensure_evaluated_with(&mut self, program: &Arc<CompiledProgram>) -> Result<()> {
        if let Some(fp) = &self.last_eval {
            if fp.program_id == program.id
                && fp.input_gens.len() == program.input_relations.len()
                && program
                    .input_relations
                    .iter()
                    .zip(&fp.input_gens)
                    .all(|(name, gen)| self.db.generation(name) == *gen)
            {
                // Served by already-current state: the pending request
                // ids owe no evaluation, so drop them rather than let
                // them mis-attribute to a later, unrelated run.
                self.pending_request_ids.clear();
                return Ok(());
            }
        }
        let level = self.effective_trace_level();
        let mut trace = RunTrace::new(level, self.trace_buffer_bytes);
        self.eval_seq += 1;
        trace.serving_context(self.eval_seq, std::mem::take(&mut self.pending_request_ids));
        // The pool is built lazily: sessions whose programs never clear
        // the split-correctness analysis (or with parallelism 0/1)
        // never spawn a thread.
        let wants_par = self.parallelism >= 2 && program.shard_plan.parallel_rules() > 0;
        if wants_par && self.pool.is_none() {
            self.pool = Some(spannerlib_par::ThreadPool::new(self.parallelism));
        }
        let pool = self.pool.as_ref().filter(|_| wants_par);
        let db = Arc::make_mut(&mut self.db);
        db.clear_derived();
        self.last_eval = None;
        // The regex prefilter counters are process-wide; deltas around
        // the run attribute its share to this profile.
        let prefilter_before = spannerlib_regex::prefilter::stats();
        let result = evaluate(
            db,
            &program.strata,
            &EvalCtx {
                registry: &self.registry,
                strategy: self.strategy,
                limits: self.limits,
                cache: self.ie_cache.as_ref(),
                planner: self.planner,
                pool,
            },
            &mut trace,
        );
        // Capture the profile before propagating errors: an aborted run
        // leaves its partial per-stratum progress in `profile()`.
        if let Some(mut profile) = trace.finish(result.as_ref().err().map(|e| e.to_string())) {
            let prefilter_after = spannerlib_regex::prefilter::stats();
            profile.prefilter_searches = prefilter_after.searches - prefilter_before.searches;
            profile.prefilter_pruned = prefilter_after.pruned - prefilter_before.pruned;
            let profile = Arc::new(profile);
            if let Some(tracer) = &self.tracer {
                for span in &profile.spans {
                    tracer.record_span(span);
                }
                tracer.record_profile(&profile);
            }
            self.last_profile = Some(profile);
        }
        self.last_stats = result?;
        // Generations are read *after* the run: rules may derive into
        // extensional heads, and those inserts must not look like fresh
        // external mutations on the next call.
        let input_gens: Vec<u64> = program
            .input_relations
            .iter()
            .map(|name| self.db.generation(name))
            .collect();
        {
            use std::hash::{Hash, Hasher};
            let mut h = rustc_hash::FxHasher::default();
            program.id.hash(&mut h);
            input_gens.hash(&mut h);
            self.last_fingerprint = h.finish();
        }
        self.last_eval = Some(EvalFingerprint {
            program_id: program.id,
            input_gens,
        });
        Ok(())
    }

    /// The level evaluations actually record at: the builder knob or
    /// the attached tracer's request, whichever is higher.
    fn effective_trace_level(&self) -> TraceLevel {
        match &self.tracer {
            Some(t) => self.trace_level.max(t.level()),
            None => self.trace_level,
        }
    }

    /// Read access to the database for prepared-query execution.
    pub(crate) fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access; clones the database first if a live [`Snapshot`]
    /// still shares it (copy-on-write).
    fn db_mut(&mut self) -> &mut Database {
        Arc::make_mut(&mut self.db)
    }
}
