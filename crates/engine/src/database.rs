//! Relation storage: declared (extensional) and derived (intensional)
//! relations plus the session-wide document store.
//!
//! Every *extensional* relation carries a **generation counter** bumped
//! on each mutation (declare, import, fact insert, removal). The session
//! fingerprints the generations of exactly the relations a compiled
//! program reads, so an unchanged EDB — or a change to an unrelated
//! relation — skips the fixpoint entirely. This replaces the old global
//! `dirty` flag.

use crate::error::{EngineError, Result};
use rustc_hash::{FxHashMap, FxHashSet};
use spannerlib_core::{DocumentStore, Relation, Schema, Tuple};

/// The fact store of one session.
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: FxHashMap<String, Relation>,
    /// Names created by `new …` declarations or imports (extensional);
    /// everything else is rule-derived (intensional).
    extensional: FxHashMap<String, Schema>,
    /// Per-relation mutation generations (extensional relations only).
    generations: FxHashMap<String, u64>,
    /// Monotone tick backing the generation counters.
    tick: u64,
    /// Per-tuple provenance for relations that are both extensional and
    /// rule heads: tuples the *fixpoint* inserted (as opposed to
    /// host-asserted facts). [`Database::clear_derived`] retracts
    /// exactly these, so re-imports of a rule's inputs no longer leave
    /// stale derived tuples behind. Purely derived relations need no
    /// marks — they are dropped wholesale.
    derived_marks: FxHashMap<String, FxHashSet<Tuple>>,
    /// Interned documents; spans in any relation point here.
    pub docs: DocumentStore,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The mutation generation of relation `name` (0 when it has never
    /// been touched).
    pub fn generation(&self, name: &str) -> u64 {
        self.generations.get(name).copied().unwrap_or(0)
    }

    fn bump(&mut self, name: &str) {
        self.tick += 1;
        self.generations.insert(name.to_string(), self.tick);
    }

    /// Declares an extensional relation with an explicit schema.
    pub fn declare(&mut self, name: &str, schema: Schema) -> Result<()> {
        if self.relations.contains_key(name) {
            return Err(EngineError::DuplicateRelation(name.to_string()));
        }
        self.extensional.insert(name.to_string(), schema.clone());
        self.relations
            .insert(name.to_string(), Relation::new(schema));
        self.bump(name);
        Ok(())
    }

    /// Inserts a whole relation under `name`, replacing any previous one
    /// (used by `Session::import`). Every tuple of the replacement is a
    /// host-asserted fact, so stale derived marks are dropped.
    pub fn put_relation(&mut self, name: &str, relation: Relation) {
        self.extensional
            .insert(name.to_string(), relation.schema().clone());
        self.relations.insert(name.to_string(), relation);
        self.derived_marks.remove(name);
        self.bump(name);
    }

    /// The declared schema of an extensional relation, if `name` is one.
    pub fn extensional_schema(&self, name: &str) -> Option<&Schema> {
        self.extensional.get(name)
    }

    /// Whether `name` exists (extensional or derived).
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Whether `name` was declared/imported (as opposed to rule-derived).
    pub fn is_extensional(&self, name: &str) -> bool {
        self.extensional.contains_key(name)
    }

    /// The relation named `name`.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| EngineError::UnknownRelation(name.to_string()))
    }

    /// The relation named `name`, or an empty placeholder if it does not
    /// exist (used for derived relations that produced no tuples).
    pub fn relation_or_empty(&self, name: &str) -> Relation {
        self.relations
            .get(name)
            .cloned()
            .unwrap_or_else(|| Relation::new(Schema::empty()))
    }

    /// Inserts a host-asserted fact, creating a derived relation with
    /// the tuple's own schema on first insertion. Returns `true` when the
    /// tuple is new. Inserts into extensional relations bump the
    /// relation's generation; derived inserts (the fixpoint hot path) do
    /// not.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        // A fact assertion overrides derived provenance: even if a rule
        // once derived this tuple, it now survives clear_derived.
        if let Some(marks) = self.derived_marks.get_mut(name) {
            marks.remove(&tuple);
        }
        let new = self.insert_impl(name, tuple)?;
        if new && self.extensional.contains_key(name) {
            self.bump(name);
        }
        Ok(new)
    }

    /// Inserts a tuple derived by the fixpoint. Unlike
    /// [`Database::insert`] it never bumps a generation counter —
    /// derived content is a function of the EDB and the program, so it
    /// must not invalidate the evaluation fingerprint — and new tuples
    /// landing in an *extensional* relation are marked with derived
    /// provenance so the next [`Database::clear_derived`] retracts them.
    pub fn insert_derived(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        if self.extensional.contains_key(name) {
            // Duplicates are the steady state of fixpoint rounds; skip
            // the provenance-mark clone (and the insert) for them.
            if self
                .relations
                .get(name)
                .is_some_and(|rel| rel.contains(&tuple))
            {
                return Ok(false);
            }
            let new = self.insert_impl(name, tuple.clone())?;
            if new {
                self.derived_marks
                    .entry(name.to_string())
                    .or_default()
                    .insert(tuple);
            }
            return Ok(new);
        }
        self.insert_impl(name, tuple)
    }

    fn insert_impl(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        if let Some(rel) = self.relations.get_mut(name) {
            return Ok(rel.insert(tuple)?);
        }
        let schema = Schema::new(
            tuple
                .values()
                .iter()
                .map(|v| v.value_type())
                .collect::<Vec<_>>(),
        );
        let mut rel = Relation::new(schema);
        rel.insert(tuple)?;
        self.relations.insert(name.to_string(), rel);
        Ok(true)
    }

    /// Clears every *derived* tuple (before re-running the fixpoint):
    /// purely derived relations are dropped wholesale, and relations
    /// that are both extensional and rule heads lose exactly the tuples
    /// the fixpoint put there — host-asserted facts and documents are
    /// preserved.
    pub fn clear_derived(&mut self) {
        self.relations
            .retain(|name, _| self.extensional.contains_key(name));
        for (name, marks) in self.derived_marks.drain() {
            if let Some(rel) = self.relations.get_mut(&name) {
                for tuple in &marks {
                    rel.remove(tuple);
                }
            }
        }
    }

    /// Removes a relation entirely. Returns `true` when it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let existed = self.relations.remove(name).is_some();
        self.extensional.remove(name);
        self.derived_marks.remove(name);
        if existed {
            self.bump(name);
        }
        existed
    }

    /// Iterates over `(name, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Splits the database into a shared view of the relations and an
    /// exclusive handle on the document store — the aliasing pattern of
    /// plan execution, where IE functions intern documents while scans
    /// read relations.
    pub fn split_mut(&mut self) -> (&FxHashMap<String, Relation>, &mut DocumentStore) {
        (&self.relations, &mut self.docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_core::{Value, ValueType};

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn declare_and_insert() {
        let mut db = Database::new();
        db.declare("R", Schema::new(vec![ValueType::Int])).unwrap();
        assert!(db.insert("R", t(&[1])).unwrap());
        assert!(!db.insert("R", t(&[1])).unwrap());
        assert_eq!(db.relation("R").unwrap().len(), 1);
    }

    #[test]
    fn double_declare_rejected() {
        let mut db = Database::new();
        db.declare("R", Schema::new(vec![ValueType::Int])).unwrap();
        assert!(matches!(
            db.declare("R", Schema::new(vec![ValueType::Int])),
            Err(EngineError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn derived_relation_infers_schema() {
        let mut db = Database::new();
        db.insert("D", Tuple::new([Value::str("a"), Value::Int(1)]))
            .unwrap();
        assert_eq!(
            db.relation("D").unwrap().schema().types(),
            &[ValueType::Str, ValueType::Int]
        );
        // Later inserts must conform.
        assert!(db.insert("D", t(&[1, 2])).is_err());
    }

    #[test]
    fn clear_derived_preserves_extensional() {
        let mut db = Database::new();
        db.declare("E", Schema::new(vec![ValueType::Int])).unwrap();
        db.insert("E", t(&[1])).unwrap();
        db.insert("D", t(&[2])).unwrap();
        db.clear_derived();
        assert!(db.contains("E"));
        assert_eq!(db.relation("E").unwrap().len(), 1);
        assert!(!db.contains("D"));
    }

    #[test]
    fn unknown_relation_errors() {
        let db = Database::new();
        assert!(matches!(
            db.relation("nope"),
            Err(EngineError::UnknownRelation(_))
        ));
    }

    #[test]
    fn generations_track_extensional_mutations_only() {
        let mut db = Database::new();
        assert_eq!(db.generation("E"), 0);
        db.declare("E", Schema::new(vec![ValueType::Int])).unwrap();
        let g_decl = db.generation("E");
        assert!(g_decl > 0);
        db.insert("E", t(&[1])).unwrap();
        let g_fact = db.generation("E");
        assert!(g_fact > g_decl);
        // Duplicate insert: no change.
        db.insert("E", t(&[1])).unwrap();
        assert_eq!(db.generation("E"), g_fact);
        // Derived inserts never bump.
        db.insert_derived("D", t(&[2])).unwrap();
        db.insert_derived("D", t(&[3])).unwrap();
        assert_eq!(db.generation("D"), 0);
        // Unrelated relations are independent.
        db.declare("F", Schema::new(vec![ValueType::Int])).unwrap();
        assert_eq!(db.generation("E"), g_fact);
        // Removal is a mutation.
        assert!(db.remove("E"));
        assert!(db.generation("E") > g_fact);
        assert!(!db.remove("E"));
    }

    #[test]
    fn clear_derived_is_exact_on_mixed_relations() {
        let mut db = Database::new();
        db.declare("E", Schema::new(vec![ValueType::Int])).unwrap();
        db.insert("E", t(&[1])).unwrap(); // fact
        db.insert_derived("E", t(&[2])).unwrap(); // fixpoint-derived
        db.insert_derived("E", t(&[1])).unwrap(); // duplicate of a fact: no mark
        db.clear_derived();
        let rel = db.relation("E").unwrap();
        assert!(rel.contains(&t(&[1])), "facts survive");
        assert!(!rel.contains(&t(&[2])), "derived tuples are retracted");
    }

    #[test]
    fn fact_assertion_overrides_derived_provenance() {
        let mut db = Database::new();
        db.declare("E", Schema::new(vec![ValueType::Int])).unwrap();
        db.insert_derived("E", t(&[7])).unwrap();
        // The host now asserts the same tuple as a fact.
        assert!(!db.insert("E", t(&[7])).unwrap());
        db.clear_derived();
        assert!(db.relation("E").unwrap().contains(&t(&[7])));
    }

    #[test]
    fn put_relation_clears_stale_marks() {
        let mut db = Database::new();
        db.declare("E", Schema::new(vec![ValueType::Int])).unwrap();
        db.insert_derived("E", t(&[1])).unwrap();
        let mut replacement = Relation::new(Schema::new(vec![ValueType::Int]));
        replacement.insert(t(&[1])).unwrap();
        db.put_relation("E", replacement);
        db.clear_derived();
        assert!(
            db.relation("E").unwrap().contains(&t(&[1])),
            "replacement content is all fact-provenance"
        );
    }

    #[test]
    fn extensional_flag() {
        let mut db = Database::new();
        db.declare("E", Schema::new(vec![ValueType::Int])).unwrap();
        db.insert("D", t(&[1])).unwrap();
        assert!(db.is_extensional("E"));
        assert!(!db.is_extensional("D"));
    }
}
