//! Arithmetic IE functions — the numeric primitives the paper mentions as
//! a natural extension of the string/span core (§2).

use crate::error::{EngineError, Result};
use crate::registry::Registry;
use spannerlib_core::Value;

fn num(function: &str, v: &Value) -> Result<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        other => Err(EngineError::IeRuntime {
            function: function.to_string(),
            msg: format!("expected a number, got {}", other.value_type()),
        }),
    }
}

fn both_int(a: &Value, b: &Value) -> bool {
    matches!((a, b), (Value::Int(_), Value::Int(_)))
}

/// Installs the arithmetic builtins.
pub fn install(registry: &mut Registry) {
    registry.register_closure("add", Some(2), |args, _ctx| {
        Ok(vec![vec![if both_int(&args[0], &args[1]) {
            Value::Int(args[0].as_int().unwrap() + args[1].as_int().unwrap())
        } else {
            Value::Float(num("add", &args[0])? + num("add", &args[1])?)
        }]])
    });

    registry.register_closure("sub", Some(2), |args, _ctx| {
        Ok(vec![vec![if both_int(&args[0], &args[1]) {
            Value::Int(args[0].as_int().unwrap() - args[1].as_int().unwrap())
        } else {
            Value::Float(num("sub", &args[0])? - num("sub", &args[1])?)
        }]])
    });

    registry.register_closure("mul", Some(2), |args, _ctx| {
        Ok(vec![vec![if both_int(&args[0], &args[1]) {
            Value::Int(args[0].as_int().unwrap() * args[1].as_int().unwrap())
        } else {
            Value::Float(num("mul", &args[0])? * num("mul", &args[1])?)
        }]])
    });

    registry.register_closure("div", Some(2), |args, _ctx| {
        let b = num("div", &args[1])?;
        if b == 0.0 {
            return Err(EngineError::IeRuntime {
                function: "div".into(),
                msg: "division by zero".into(),
            });
        }
        Ok(vec![vec![Value::Float(num("div", &args[0])? / b)]])
    });

    // range(n) -> (0), (1), …, (n-1): a row generator, handy in tests and
    // synthetic workloads.
    registry.register_closure("range", Some(1), |args, _ctx| {
        let n = args[0].as_int().ok_or_else(|| EngineError::IeRuntime {
            function: "range".into(),
            msg: "expected an int".into(),
        })?;
        Ok((0..n.max(0)).map(|i| vec![Value::Int(i)]).collect())
    });

    // to_int(s) -> (n): parse a string/span as an integer; no rows when
    // unparseable (a filtering parse, convenient in pipelines).
    registry.register_closure("to_int", Some(1), |args, ctx| {
        let text = match &args[0] {
            Value::Str(s) => s.to_string(),
            Value::Span(s) => ctx.span_text(s)?,
            Value::Int(i) => return Ok(vec![vec![Value::Int(*i)]]),
            other => {
                return Err(EngineError::IeRuntime {
                    function: "to_int".into(),
                    msg: format!("expected str/span/int, got {}", other.value_type()),
                })
            }
        };
        Ok(match text.trim().parse::<i64>() {
            Ok(n) => vec![vec![Value::Int(n)]],
            Err(_) => vec![],
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ie::{IeContext, IeOutput};
    use spannerlib_core::DocumentStore;

    fn call(name: &str, args: &[Value]) -> Result<IeOutput> {
        let registry = Registry::new();
        let f = registry.ie(name).unwrap().clone();
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        f.call(args, 1, &mut ctx)
    }

    #[test]
    fn int_arithmetic_stays_int() {
        assert_eq!(
            call("add", &[Value::Int(2), Value::Int(3)]).unwrap()[0][0],
            Value::Int(5)
        );
        assert_eq!(
            call("mul", &[Value::Int(2), Value::Int(3)]).unwrap()[0][0],
            Value::Int(6)
        );
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        assert_eq!(
            call("add", &[Value::Int(2), Value::Float(0.5)]).unwrap()[0][0],
            Value::Float(2.5)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(call("div", &[Value::Int(1), Value::Int(0)]).is_err());
        assert_eq!(
            call("div", &[Value::Int(7), Value::Int(2)]).unwrap()[0][0],
            Value::Float(3.5)
        );
    }

    #[test]
    fn range_generates_rows() {
        assert_eq!(call("range", &[Value::Int(3)]).unwrap().len(), 3);
        assert_eq!(call("range", &[Value::Int(-1)]).unwrap().len(), 0);
    }

    #[test]
    fn to_int_parses_or_filters() {
        assert_eq!(
            call("to_int", &[Value::str(" 42 ")]).unwrap(),
            vec![vec![Value::Int(42)]]
        );
        assert!(call("to_int", &[Value::str("nope")]).unwrap().is_empty());
    }
}
