//! String-manipulation IE functions.
//!
//! The paper (§4.1) assumes "standard operations such as string
//! concatenation … and a printf-like formatting" as IE functions; this
//! module supplies them. String arguments accept spans too — a span is
//! resolved to its text first, which keeps rules free of explicit
//! conversions.

use crate::error::{EngineError, Result};
use crate::ie::{filter_output, IeContext};
use crate::registry::Registry;
use spannerlib_core::Value;

fn err(function: &str, msg: impl Into<String>) -> EngineError {
    EngineError::IeRuntime {
        function: function.to_string(),
        msg: msg.into(),
    }
}

/// Resolves a value to text: strings pass through, spans resolve.
fn as_text(function: &str, v: &Value, ctx: &IeContext<'_>) -> Result<String> {
    match v {
        Value::Str(s) => Ok(s.to_string()),
        Value::Span(s) => ctx.span_text(s),
        other => Err(err(
            function,
            format!("expected str or span, got {}", other.value_type()),
        )),
    }
}

/// Installs the string builtins.
pub fn install(registry: &mut Registry) {
    // concat(a, b) -> (a ++ b)
    registry.register_closure("concat", Some(2), |args, ctx| {
        let a = as_text("concat", &args[0], ctx)?;
        let b = as_text("concat", &args[1], ctx)?;
        Ok(vec![vec![Value::str(format!("{a}{b}"))]])
    });

    // format(template, x1, …, xn) -> (filled) — `{}` placeholders.
    registry.register_closure("format", None, |args, ctx| {
        let template = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| err("format", "first argument must be a template string"))?;
        let mut pieces = template.split("{}");
        let mut out = String::new();
        out.push_str(pieces.next().unwrap_or(""));
        let mut used = 0usize;
        for (i, piece) in pieces.enumerate() {
            let arg = args.get(i + 1).ok_or_else(|| {
                err(
                    "format",
                    format!(
                        "template has more placeholders than the {} argument(s)",
                        args.len() - 1
                    ),
                )
            })?;
            match arg {
                Value::Str(s) => out.push_str(s),
                Value::Span(s) => out.push_str(&ctx.span_text(s)?),
                Value::Int(x) => out.push_str(&x.to_string()),
                Value::Float(x) => out.push_str(&x.to_string()),
                Value::Bool(x) => out.push_str(&x.to_string()),
            }
            used = i + 1;
            out.push_str(piece);
        }
        if used != args.len() - 1 {
            return Err(err(
                "format",
                format!(
                    "template has {used} placeholder(s) but {} argument(s) were given",
                    args.len() - 1
                ),
            ));
        }
        Ok(vec![vec![Value::str(out)]])
    });

    // upper/lower/trim: one in, one out.
    registry.register_closure("upper", Some(1), |args, ctx| {
        let s = as_text("upper", &args[0], ctx)?;
        Ok(vec![vec![Value::str(s.to_uppercase())]])
    });
    registry.register_closure("lower", Some(1), |args, ctx| {
        let s = as_text("lower", &args[0], ctx)?;
        Ok(vec![vec![Value::str(s.to_lowercase())]])
    });
    registry.register_closure("trim", Some(1), |args, ctx| {
        let s = as_text("trim", &args[0], ctx)?;
        Ok(vec![vec![Value::str(s.trim())]])
    });

    // replace(s, from, to) -> (s')
    registry.register_closure("replace", Some(3), |args, ctx| {
        let s = as_text("replace", &args[0], ctx)?;
        let from = as_text("replace", &args[1], ctx)?;
        let to = as_text("replace", &args[2], ctx)?;
        Ok(vec![vec![Value::str(s.replace(&from, &to))]])
    });

    // split(delim, s) -> (part) — one row per part; empty parts skipped.
    registry.register_closure("split", Some(2), |args, ctx| {
        let delim = as_text("split", &args[0], ctx)?;
        let s = as_text("split", &args[1], ctx)?;
        if delim.is_empty() {
            return Err(err("split", "delimiter must be non-empty"));
        }
        Ok(s.split(&delim)
            .filter(|p| !p.is_empty())
            .map(|p| vec![Value::str(p)])
            .collect())
    });

    // str_len(s) -> (n)
    registry.register_closure("str_len", Some(1), |args, ctx| {
        let s = as_text("str_len", &args[0], ctx)?;
        Ok(vec![vec![Value::Int(s.len() as i64)]])
    });

    // as_str(x) -> (text) — explicit span→string (the paper writes
    // str(y) in aggregation; in rule bodies this is the equivalent).
    registry.register_closure("as_str", Some(1), |args, ctx| {
        let s = as_text("as_str", &args[0], ctx)?;
        Ok(vec![vec![Value::str(s)]])
    });

    // starts_with / ends_with / str_contains: boolean filters.
    registry.register_closure("starts_with", Some(2), |args, ctx| {
        let s = as_text("starts_with", &args[0], ctx)?;
        let prefix = as_text("starts_with", &args[1], ctx)?;
        Ok(filter_output(s.starts_with(&prefix)))
    });
    registry.register_closure("ends_with", Some(2), |args, ctx| {
        let s = as_text("ends_with", &args[0], ctx)?;
        let suffix = as_text("ends_with", &args[1], ctx)?;
        Ok(filter_output(s.ends_with(&suffix)))
    });
    registry.register_closure("str_contains", Some(2), |args, ctx| {
        let s = as_text("str_contains", &args[0], ctx)?;
        let needle = as_text("str_contains", &args[1], ctx)?;
        Ok(filter_output(s.contains(&needle)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ie::IeOutput;
    use spannerlib_core::DocumentStore;

    fn call(name: &str, args: &[Value]) -> Result<IeOutput> {
        let registry = Registry::new();
        let f = registry.ie(name).unwrap().clone();
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        f.call(args, 1, &mut ctx)
    }

    fn one(name: &str, args: &[Value]) -> Value {
        call(name, args).unwrap()[0][0].clone()
    }

    #[test]
    fn concat_joins() {
        assert_eq!(
            one("concat", &[Value::str("foo"), Value::str("bar")]),
            Value::str("foobar")
        );
    }

    #[test]
    fn concat_accepts_spans() {
        let registry = Registry::new();
        let f = registry.ie("concat").unwrap().clone();
        let mut docs = DocumentStore::new();
        let id = docs.intern("hello world");
        let span = docs.span(id, 0, 5).unwrap();
        let mut ctx = IeContext::new(&mut docs);
        let out = f
            .call(&[Value::Span(span), Value::str("!")], 1, &mut ctx)
            .unwrap();
        assert_eq!(out[0][0], Value::str("hello!"));
    }

    #[test]
    fn format_fills_placeholders() {
        assert_eq!(
            one(
                "format",
                &[
                    Value::str("sum of {} and {} is {}"),
                    Value::Int(1),
                    Value::Int(2),
                    Value::Int(3)
                ]
            ),
            Value::str("sum of 1 and 2 is 3")
        );
    }

    #[test]
    fn format_arity_mismatches_error() {
        assert!(call("format", &[Value::str("{} {}"), Value::Int(1)]).is_err());
        assert!(call("format", &[Value::str("{}"), Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn case_and_trim() {
        assert_eq!(one("upper", &[Value::str("ab")]), Value::str("AB"));
        assert_eq!(one("lower", &[Value::str("AB")]), Value::str("ab"));
        assert_eq!(one("trim", &[Value::str("  x ")]), Value::str("x"));
    }

    #[test]
    fn replace_replaces_all() {
        assert_eq!(
            one(
                "replace",
                &[Value::str("a-b-c"), Value::str("-"), Value::str("+")]
            ),
            Value::str("a+b+c")
        );
    }

    #[test]
    fn split_skips_empties() {
        let rows = call("split", &[Value::str(","), Value::str("a,,b,c,")]).unwrap();
        let parts: Vec<_> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            parts,
            vec![Value::str("a"), Value::str("b"), Value::str("c")]
        );
    }

    #[test]
    fn filters_behave() {
        assert_eq!(
            call("starts_with", &[Value::str("abc"), Value::str("ab")])
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            call("ends_with", &[Value::str("abc"), Value::str("ab")])
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            call("str_contains", &[Value::str("abc"), Value::str("b")])
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn str_len_bytes() {
        assert_eq!(one("str_len", &[Value::str("héllo")]), Value::Int(6));
    }
}
