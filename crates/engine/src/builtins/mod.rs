//! Builtin IE functions.
//!
//! The paper assumes a standard library of generic IE primitives: the
//! `rgx` family (§2), string concatenation, span containment, and a
//! printf-like `format` (§4.1). They are ordinary [`crate::IeFunction`]s
//! registered under well-known names; user registrations may shadow them.

mod numbers;
mod rgx;
mod spans;
mod strings;

use crate::registry::Registry;

/// Installs every builtin into `registry`.
pub fn install_builtins(registry: &mut Registry) {
    rgx::install(registry);
    strings::install(registry);
    spans::install(registry);
    numbers::install(registry);
}
