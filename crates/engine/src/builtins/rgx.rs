//! The `rgx` family — the canonical IE functions of document spanners.
//!
//! * `rgx(pattern, text) -> (span, …)` — one output span per capture
//!   group, one row per **leftmost-first non-overlapping** match (Python
//!   `re` semantics; reproduces the paper's §2 worked example). With zero
//!   capture groups the whole match is returned as a single span.
//! * `rgx_string(pattern, text) -> (str, …)` — same scan, strings instead
//!   of spans.
//! * `rgx_all(pattern, text) -> (span, …)` — the formal all-matches
//!   spanner semantics ⟦γ⟧(d): every accepting run of every substring.
//! * `rgx_is_match(pattern, text) -> ()` — boolean filter.
//!
//! `text` may be a string (spans refer to its interned document) or a
//! span (output spans stay positioned in the *original* document, which
//! is what lets rules compose extractions, e.g. matching inside an AST
//! node's span).
//!
//! Compiled patterns are cached per function instance, keyed by pattern
//! text — rules typically call `rgx` with a constant pattern over many
//! documents.

use crate::error::{EngineError, Result};
use crate::ie::{filter_output, IeContext, IeFunction, IeOutput};
use crate::registry::Registry;
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use spannerlib_core::{DocId, Span, Value};
use spannerlib_regex::Regex;
use std::sync::Arc;

/// Which semantics and output representation a `RgxFunction` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Leftmost-first scan, span outputs.
    FindSpans,
    /// Leftmost-first scan, string outputs.
    FindStrings,
    /// All-matches spanner semantics, span outputs.
    AllSpans,
    /// Boolean filter.
    IsMatch,
}

/// Shared regex IE implementation parameterized by [`Mode`].
struct RgxFunction {
    mode: Mode,
    cache: Mutex<FxHashMap<String, Arc<Regex>>>,
}

impl RgxFunction {
    fn new(mode: Mode) -> Self {
        RgxFunction {
            mode,
            cache: Mutex::new(FxHashMap::default()),
        }
    }

    fn compiled(&self, pattern: &str) -> Result<Arc<Regex>> {
        if let Some(re) = self.cache.lock().get(pattern) {
            return Ok(re.clone());
        }
        let re = Arc::new(Regex::new(pattern).map_err(|e| EngineError::IeRuntime {
            function: "rgx".into(),
            msg: format!("bad pattern {pattern:?}: {e}"),
        })?);
        self.cache.lock().insert(pattern.to_string(), re.clone());
        Ok(re)
    }
}

/// Builds one output row from group byte-ranges. `origin` is the
/// `(doc, base)` pair span rows land in; string-returning mode ignores
/// it (and its laziness keeps scalar extractions out of the doc store).
fn row_from_groups(
    mode: Mode,
    groups: &[Option<(usize, usize)>],
    whole: (usize, usize),
    origin: Option<(DocId, usize)>,
    text: &str,
) -> Result<Vec<Value>> {
    // Zero-group patterns export the whole match as a single column.
    let ranges: Vec<(usize, usize)> = if groups.is_empty() {
        vec![whole]
    } else {
        groups
            .iter()
            .map(|g| {
                g.ok_or_else(|| EngineError::IeRuntime {
                    function: "rgx".into(),
                    msg: "a capture group did not participate in the match; \
                          use alternation inside the group instead"
                        .into(),
                })
            })
            .collect::<Result<_>>()?
    };
    Ok(ranges
        .into_iter()
        .map(|(s, e)| match mode {
            Mode::FindStrings => Value::str(&text[s..e]),
            _ => {
                let (doc, base) = origin.expect("span modes resolve an origin");
                Value::Span(Span::new(doc, base + s, base + e))
            }
        })
        .collect())
}

impl IeFunction for RgxFunction {
    fn input_arity(&self) -> Option<usize> {
        Some(2)
    }

    fn call(&self, args: &[Value], n_outputs: usize, ctx: &mut IeContext<'_>) -> Result<IeOutput> {
        let pattern = args[0].as_str().ok_or_else(|| EngineError::IeRuntime {
            function: "rgx".into(),
            msg: format!("pattern must be a string, got {}", args[0].value_type()),
        })?;
        let re = self.compiled(pattern)?;
        // Lazy text resolution: string arguments are only interned when
        // a span row actually needs a document (span modes, first
        // match) — `rgx_string`/`rgx_is_match` and matchless scans
        // leave the doc store untouched.
        let mut arg = ctx.text_arg(&args[1])?;
        let text = arg.shared_text();

        if self.mode == Mode::IsMatch {
            return Ok(filter_output(re.is_match(&text)));
        }

        // Output arity check: groups (or 1 for group-free patterns).
        let expected = if re.group_count() == 0 {
            1
        } else {
            re.group_count()
        };
        if n_outputs != expected {
            return Err(EngineError::IeOutputArity {
                function: "rgx".into(),
                expected: n_outputs,
                actual: expected,
            });
        }

        let mut out = Vec::new();
        match self.mode {
            Mode::FindSpans | Mode::FindStrings => {
                for caps in re.captures_iter(&text) {
                    let whole = caps.group(0).expect("group 0 present");
                    let groups: Vec<_> = caps.explicit_groups().collect();
                    let origin = (self.mode == Mode::FindSpans).then(|| arg.doc_base(ctx));
                    out.push(row_from_groups(self.mode, &groups, whole, origin, &text)?);
                }
            }
            Mode::AllSpans => {
                for m in re.all_matches(&text) {
                    let origin = Some(arg.doc_base(ctx));
                    out.push(row_from_groups(
                        self.mode,
                        &m.groups,
                        (m.start, m.end),
                        origin,
                        &text,
                    )?);
                }
            }
            Mode::IsMatch => unreachable!("handled above"),
        }
        // A failed optional group aborts the row; tolerate by dropping
        // duplicates introduced through re-offsetting.
        out.dedup();
        Ok(out)
    }
}

/// Installs the rgx family.
pub fn install(registry: &mut Registry) {
    registry.register_ie("rgx", Arc::new(RgxFunction::new(Mode::FindSpans)));
    registry.register_ie("rgx_string", Arc::new(RgxFunction::new(Mode::FindStrings)));
    registry.register_ie("rgx_all", Arc::new(RgxFunction::new(Mode::AllSpans)));
    registry.register_ie("rgx_is_match", Arc::new(RgxFunction::new(Mode::IsMatch)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_core::DocumentStore;

    fn call(name: &str, args: &[Value], n_outputs: usize, docs: &mut DocumentStore) -> IeOutput {
        let registry = Registry::new();
        let f = registry.ie(name).unwrap().clone();
        let mut ctx = IeContext::new(docs);
        f.call(args, n_outputs, &mut ctx).unwrap()
    }

    #[test]
    fn paper_example_via_ie_function() {
        let mut docs = DocumentStore::new();
        let rows = call(
            "rgx",
            &[Value::str("x{a+}c+y{b+}"), Value::str("acb aacccbbb")],
            2,
            &mut docs,
        );
        let doc = docs.lookup("acb aacccbbb").unwrap();
        assert_eq!(
            rows,
            vec![
                vec![
                    Value::Span(Span::new(doc, 0, 1)),
                    Value::Span(Span::new(doc, 2, 3))
                ],
                vec![
                    Value::Span(Span::new(doc, 4, 6)),
                    Value::Span(Span::new(doc, 9, 12))
                ],
            ]
        );
    }

    #[test]
    fn rgx_string_returns_text() {
        let mut docs = DocumentStore::new();
        let rows = call(
            "rgx_string",
            &[Value::str("x{a+}c+y{b+}"), Value::str("acb aacccbbb")],
            2,
            &mut docs,
        );
        assert_eq!(
            rows,
            vec![
                vec![Value::str("a"), Value::str("b")],
                vec![Value::str("aa"), Value::str("bbb")],
            ]
        );
    }

    #[test]
    fn group_free_pattern_yields_whole_match() {
        let mut docs = DocumentStore::new();
        let rows = call("rgx", &[Value::str("b+"), Value::str("abba")], 1, &mut docs);
        let doc = docs.lookup("abba").unwrap();
        assert_eq!(rows, vec![vec![Value::Span(Span::new(doc, 1, 3))]]);
    }

    #[test]
    fn span_input_offsets_results_into_original_doc() {
        let mut docs = DocumentStore::new();
        let id = docs.intern("zzz abba zzz");
        let scope = docs.span(id, 4, 9).unwrap(); // "abba "
        let rows = call("rgx", &[Value::str("b+"), Value::Span(scope)], 1, &mut docs);
        assert_eq!(rows, vec![vec![Value::Span(Span::new(id, 5, 7))]]);
    }

    #[test]
    fn all_matches_mode_is_superset() {
        let mut docs = DocumentStore::new();
        let find = call("rgx", &[Value::str("a+"), Value::str("aaa")], 1, &mut docs);
        let all = call(
            "rgx_all",
            &[Value::str("a+"), Value::str("aaa")],
            1,
            &mut docs,
        );
        assert_eq!(find.len(), 1);
        assert_eq!(all.len(), 6);
        for row in &find {
            assert!(all.contains(row));
        }
    }

    #[test]
    fn is_match_filters() {
        let mut docs = DocumentStore::new();
        assert_eq!(
            call(
                "rgx_is_match",
                &[Value::str("b+"), Value::str("abc")],
                0,
                &mut docs
            )
            .len(),
            1
        );
        assert_eq!(
            call(
                "rgx_is_match",
                &[Value::str("z"), Value::str("abc")],
                0,
                &mut docs
            )
            .len(),
            0
        );
    }

    #[test]
    fn wrong_output_arity_is_an_error() {
        let registry = Registry::new();
        let f = registry.ie("rgx").unwrap().clone();
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let err = f
            .call(&[Value::str("x{a}y{b}"), Value::str("ab")], 1, &mut ctx)
            .unwrap_err();
        assert!(matches!(err, EngineError::IeOutputArity { .. }));
    }

    #[test]
    fn bad_pattern_reports() {
        let registry = Registry::new();
        let f = registry.ie("rgx").unwrap().clone();
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let err = f
            .call(&[Value::str("a("), Value::str("x")], 1, &mut ctx)
            .unwrap_err();
        assert!(matches!(err, EngineError::IeRuntime { .. }));
    }

    #[test]
    fn scalar_only_modes_do_not_intern_string_arguments() {
        let mut docs = DocumentStore::new();
        call(
            "rgx_string",
            &[Value::str("(a+)"), Value::str("aa scalar outputs")],
            1,
            &mut docs,
        );
        call(
            "rgx_is_match",
            &[Value::str("a+"), Value::str("aa filter only")],
            0,
            &mut docs,
        );
        // Span mode with zero matches: still nothing to point a span at.
        call(
            "rgx",
            &[Value::str("zzz"), Value::str("no match here")],
            1,
            &mut docs,
        );
        assert!(docs.is_empty(), "no span was produced, nothing interned");

        // Span mode with matches interns exactly the one argument.
        call("rgx", &[Value::str("a+"), Value::str("aa")], 1, &mut docs);
        assert_eq!(docs.len(), 1);
        assert!(docs.lookup("aa").is_some());
    }

    #[test]
    fn pattern_cache_reuses_compilation() {
        let f = RgxFunction::new(Mode::FindSpans);
        let a = f.compiled("a+").unwrap();
        let b = f.compiled("a+").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
