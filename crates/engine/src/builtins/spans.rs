//! Span-relation IE functions.
//!
//! `contains` is the primitive the paper's §4.1 rule uses to find the
//! function enclosing the cursor:
//!
//! ```text
//! scope_of(pos, s) <- Files(name, c), AST("…", c) -> (s), contains(s, pos)
//! ```
//!
//! Boolean span predicates are zero-output IE functions (filters); they
//! can be written either as `contains(a, b) -> ()` or, because the engine
//! resolves unknown relation atoms against the IE registry, as the plain
//! atom `contains(a, b)` exactly like the paper does.

use crate::error::{EngineError, Result};
use crate::ie::filter_output;
use crate::registry::Registry;
use spannerlib_core::{Span, Value};

fn span_arg(function: &str, v: &Value) -> Result<Span> {
    v.as_span().copied().ok_or_else(|| EngineError::IeRuntime {
        function: function.to_string(),
        msg: format!("expected a span, got {}", v.value_type()),
    })
}

/// Installs the span builtins.
pub fn install(registry: &mut Registry) {
    // contains(outer, inner): filter — outer span contains inner span.
    registry.register_closure("contains", Some(2), |args, _ctx| {
        let outer = span_arg("contains", &args[0])?;
        let inner = span_arg("contains", &args[1])?;
        Ok(filter_output(outer.contains(&inner)))
    });

    // contained_in(inner, outer): the flipped reading, matching the
    // argument order of the paper's example `contains(pos, s)` where the
    // *scope* s contains the cursor pos.
    registry.register_closure("contained_in", Some(2), |args, _ctx| {
        let inner = span_arg("contained_in", &args[0])?;
        let outer = span_arg("contained_in", &args[1])?;
        Ok(filter_output(outer.contains(&inner)))
    });

    registry.register_closure("overlaps", Some(2), |args, _ctx| {
        let a = span_arg("overlaps", &args[0])?;
        let b = span_arg("overlaps", &args[1])?;
        Ok(filter_output(a.overlaps(&b)))
    });

    registry.register_closure("precedes", Some(2), |args, _ctx| {
        let a = span_arg("precedes", &args[0])?;
        let b = span_arg("precedes", &args[1])?;
        Ok(filter_output(a.precedes(&b)))
    });

    // same_doc(a, b): filter — both spans point into one document.
    registry.register_closure("same_doc", Some(2), |args, _ctx| {
        let a = span_arg("same_doc", &args[0])?;
        let b = span_arg("same_doc", &args[1])?;
        Ok(filter_output(a.doc == b.doc))
    });

    // span_start/span_end/span_len: span -> int.
    registry.register_closure("span_start", Some(1), |args, _ctx| {
        let s = span_arg("span_start", &args[0])?;
        Ok(vec![vec![Value::Int(s.start as i64)]])
    });
    registry.register_closure("span_end", Some(1), |args, _ctx| {
        let s = span_arg("span_end", &args[0])?;
        Ok(vec![vec![Value::Int(s.end as i64)]])
    });
    registry.register_closure("span_len", Some(1), |args, _ctx| {
        let s = span_arg("span_len", &args[0])?;
        Ok(vec![vec![Value::Int(s.len() as i64)]])
    });

    // expand(span, left, right) -> (span) — widen a span, clamped to the
    // document bounds. Useful for context windows around a match.
    registry.register_closure("expand", Some(3), |args, ctx| {
        let s = span_arg("expand", &args[0])?;
        let left = args[1].as_int().ok_or_else(|| EngineError::IeRuntime {
            function: "expand".into(),
            msg: "left margin must be an int".into(),
        })?;
        let right = args[2].as_int().ok_or_else(|| EngineError::IeRuntime {
            function: "expand".into(),
            msg: "right margin must be an int".into(),
        })?;
        let doc_len = ctx.doc_text(s.doc)?.len();
        let mut start = (s.start as i64 - left).max(0) as usize;
        let mut end = ((s.end as i64 + right).max(0) as usize).min(doc_len);
        // Snap to char boundaries.
        let text = ctx.doc_text(s.doc)?;
        while start > 0 && !text.is_char_boundary(start) {
            start -= 1;
        }
        while end < text.len() && !text.is_char_boundary(end) {
            end += 1;
        }
        if start > end {
            start = end;
        }
        Ok(vec![vec![Value::Span(ctx.make_span(s.doc, start, end)?)]])
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ie::{IeContext, IeOutput};
    use spannerlib_core::DocumentStore;

    fn setup() -> (Registry, DocumentStore) {
        (Registry::new(), DocumentStore::new())
    }

    fn call(registry: &Registry, docs: &mut DocumentStore, name: &str, args: &[Value]) -> IeOutput {
        let f = registry.ie(name).unwrap().clone();
        let mut ctx = IeContext::new(docs);
        f.call(args, 1, &mut ctx).unwrap()
    }

    #[test]
    fn containment_filters() {
        let (r, mut docs) = setup();
        let id = docs.intern("0123456789");
        let outer = Value::Span(docs.span(id, 0, 8).unwrap());
        let inner = Value::Span(docs.span(id, 2, 5).unwrap());
        assert_eq!(
            call(&r, &mut docs, "contains", &[outer.clone(), inner.clone()]).len(),
            1
        );
        assert_eq!(
            call(&r, &mut docs, "contains", &[inner.clone(), outer.clone()]).len(),
            0
        );
        assert_eq!(
            call(&r, &mut docs, "contained_in", &[inner, outer]).len(),
            1
        );
    }

    #[test]
    fn overlap_and_precede() {
        let (r, mut docs) = setup();
        let id = docs.intern("0123456789");
        let a = Value::Span(docs.span(id, 0, 4).unwrap());
        let b = Value::Span(docs.span(id, 2, 6).unwrap());
        let c = Value::Span(docs.span(id, 6, 9).unwrap());
        assert_eq!(
            call(&r, &mut docs, "overlaps", &[a.clone(), b.clone()]).len(),
            1
        );
        assert_eq!(
            call(&r, &mut docs, "overlaps", &[a.clone(), c.clone()]).len(),
            0
        );
        assert_eq!(call(&r, &mut docs, "precedes", &[a, c]).len(), 1);
    }

    #[test]
    fn accessors() {
        let (r, mut docs) = setup();
        let id = docs.intern("0123456789");
        let s = Value::Span(docs.span(id, 2, 7).unwrap());
        assert_eq!(
            call(&r, &mut docs, "span_start", std::slice::from_ref(&s))[0][0],
            Value::Int(2)
        );
        assert_eq!(
            call(&r, &mut docs, "span_end", std::slice::from_ref(&s))[0][0],
            Value::Int(7)
        );
        assert_eq!(call(&r, &mut docs, "span_len", &[s])[0][0], Value::Int(5));
    }

    #[test]
    fn expand_clamps_to_document() {
        let (r, mut docs) = setup();
        let id = docs.intern("0123456789");
        let s = Value::Span(docs.span(id, 4, 6).unwrap());
        let out = call(
            &r,
            &mut docs,
            "expand",
            &[s, Value::Int(100), Value::Int(2)],
        );
        let span = *out[0][0].as_span().unwrap();
        assert_eq!((span.start, span.end), (0, 8));
    }

    #[test]
    fn non_span_argument_errors() {
        let (r, mut docs) = setup();
        let f = r.ie("contains").unwrap().clone();
        let mut ctx = IeContext::new(&mut docs);
        assert!(f
            .call(&[Value::Int(1), Value::Int(2)], 0, &mut ctx)
            .is_err());
    }
}
