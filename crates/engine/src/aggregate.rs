//! Aggregation functions and conversion functions (paper §3.1).
//!
//! A rule head may contain aggregate terms:
//!
//! ```text
//! R(t, lex_concat(str(y))) <- Texts(d, t), rgx("…", t) -> (y)
//! ```
//!
//! Plain head variables become the **group-by key**; each aggregate term
//! folds the multiset of values its variable takes within a group.
//! *Conversions* (`str`, `len`) map each value before aggregation — the
//! paper's `str(y)` turns spans into the strings they cover, which is what
//! makes `lex_concat` lexicographic over text rather than positions.

use crate::error::{EngineError, Result};
use crate::ie::IeContext;
use spannerlib_core::Value;
use std::sync::Arc;

/// A value-level conversion usable inside aggregation terms.
pub trait Conversion: Send + Sync {
    /// Converts one value.
    fn convert(&self, v: &Value, ctx: &IeContext<'_>) -> Result<Value>;
}

/// An aggregation function folding a group's values into one value.
pub trait AggFunction: Send + Sync {
    /// Folds `values` (never empty) into the aggregate result.
    fn apply(&self, values: &[Value]) -> Result<Value>;
}

struct FnConversion<F>(F);

impl<F> Conversion for FnConversion<F>
where
    F: Fn(&Value, &IeContext<'_>) -> Result<Value> + Send + Sync,
{
    fn convert(&self, v: &Value, ctx: &IeContext<'_>) -> Result<Value> {
        (self.0)(v, ctx)
    }
}

struct FnAgg<F>(#[allow(dead_code)] &'static str, F);

impl<F> AggFunction for FnAgg<F>
where
    F: Fn(&[Value]) -> Result<Value> + Send + Sync,
{
    fn apply(&self, values: &[Value]) -> Result<Value> {
        (self.1)(values)
    }
}

fn agg_err(function: &str, msg: impl Into<String>) -> EngineError {
    EngineError::AggRuntime {
        function: function.to_string(),
        msg: msg.into(),
    }
}

fn numeric(function: &str, v: &Value) -> Result<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        other => Err(agg_err(
            function,
            format!("expected a numeric value, got {}", other.value_type()),
        )),
    }
}

/// The builtin aggregation functions.
pub fn builtin_aggregates() -> Vec<(String, Arc<dyn AggFunction>)> {
    let mut out: Vec<(String, Arc<dyn AggFunction>)> = Vec::new();

    out.push((
        "count".into(),
        Arc::new(FnAgg("count", |vs: &[Value]| {
            Ok(Value::Int(vs.len() as i64))
        })),
    ));

    out.push((
        "sum".into(),
        Arc::new(FnAgg("sum", |vs: &[Value]| {
            if vs.iter().all(|v| matches!(v, Value::Int(_))) {
                Ok(Value::Int(vs.iter().map(|v| v.as_int().unwrap()).sum()))
            } else {
                let mut acc = 0.0;
                for v in vs {
                    acc += numeric("sum", v)?;
                }
                Ok(Value::Float(acc))
            }
        })),
    ));

    out.push((
        "avg".into(),
        Arc::new(FnAgg("avg", |vs: &[Value]| {
            let mut acc = 0.0;
            for v in vs {
                acc += numeric("avg", v)?;
            }
            Ok(Value::Float(acc / vs.len() as f64))
        })),
    ));

    out.push((
        "min".into(),
        Arc::new(FnAgg("min", |vs: &[Value]| {
            vs.iter()
                .min()
                .cloned()
                .ok_or_else(|| agg_err("min", "empty group"))
        })),
    ));

    out.push((
        "max".into(),
        Arc::new(FnAgg("max", |vs: &[Value]| {
            vs.iter()
                .max()
                .cloned()
                .ok_or_else(|| agg_err("max", "empty group"))
        })),
    ));

    // The paper's example aggregation: concatenate in lexicographic order.
    out.push((
        "lex_concat".into(),
        Arc::new(FnAgg("lex_concat", |vs: &[Value]| {
            let mut strings: Vec<&str> = Vec::with_capacity(vs.len());
            for v in vs {
                match v {
                    Value::Str(s) => strings.push(s),
                    other => {
                        return Err(agg_err(
                            "lex_concat",
                            format!(
                                "expected str values (wrap spans with str(…)), got {}",
                                other.value_type()
                            ),
                        ))
                    }
                }
            }
            strings.sort_unstable();
            Ok(Value::str(strings.concat()))
        })),
    ));

    // `collect`: like lex_concat but comma-separated — convenient for
    // prompt building in the LLM scenarios.
    out.push((
        "collect".into(),
        Arc::new(FnAgg("collect", |vs: &[Value]| {
            let mut strings: Vec<String> = Vec::with_capacity(vs.len());
            for v in vs {
                match v {
                    Value::Str(s) => strings.push(s.to_string()),
                    other => strings.push(other.to_string()),
                }
            }
            strings.sort_unstable();
            Ok(Value::str(strings.join(", ")))
        })),
    ));

    out
}

/// The builtin conversion functions.
pub fn builtin_conversions() -> Vec<(String, Arc<dyn Conversion>)> {
    let mut out: Vec<(String, Arc<dyn Conversion>)> = Vec::new();

    // str(x): spans resolve to their text; other values render to text.
    out.push((
        "str".into(),
        Arc::new(FnConversion(|v: &Value, ctx: &IeContext<'_>| {
            Ok(match v {
                Value::Span(s) => Value::str(ctx.span_text(s)?),
                Value::Str(s) => Value::Str(s.clone()),
                Value::Int(i) => Value::str(i.to_string()),
                Value::Float(f) => Value::str(f.to_string()),
                Value::Bool(b) => Value::str(b.to_string()),
            })
        })),
    ));

    // len(x): string length in bytes / span width.
    out.push((
        "len".into(),
        Arc::new(FnConversion(|v: &Value, _ctx: &IeContext<'_>| match v {
            Value::Str(s) => Ok(Value::Int(s.len() as i64)),
            Value::Span(s) => Ok(Value::Int(s.len() as i64)),
            other => Err(EngineError::AggRuntime {
                function: "len".into(),
                msg: format!("expected str or span, got {}", other.value_type()),
            }),
        })),
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_core::DocumentStore;

    fn agg(name: &str) -> Arc<dyn AggFunction> {
        builtin_aggregates()
            .into_iter()
            .find(|(n, _)| n == name)
            .unwrap()
            .1
    }

    fn conv(name: &str) -> Arc<dyn Conversion> {
        builtin_conversions()
            .into_iter()
            .find(|(n, _)| n == name)
            .unwrap()
            .1
    }

    #[test]
    fn count_counts() {
        let vs = vec![Value::Int(1), Value::Int(1), Value::str("x")];
        assert_eq!(agg("count").apply(&vs).unwrap(), Value::Int(3));
    }

    #[test]
    fn sum_stays_integer_for_ints() {
        assert_eq!(
            agg("sum").apply(&[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            agg("sum")
                .apply(&[Value::Int(2), Value::Float(0.5)])
                .unwrap(),
            Value::Float(2.5)
        );
    }

    #[test]
    fn sum_rejects_strings() {
        assert!(agg("sum").apply(&[Value::str("x")]).is_err());
    }

    #[test]
    fn avg_of_ints() {
        assert_eq!(
            agg("avg").apply(&[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Float(1.5)
        );
    }

    #[test]
    fn min_max_use_value_order() {
        let vs = vec![Value::str("b"), Value::str("a"), Value::str("c")];
        assert_eq!(agg("min").apply(&vs).unwrap(), Value::str("a"));
        assert_eq!(agg("max").apply(&vs).unwrap(), Value::str("c"));
    }

    #[test]
    fn lex_concat_sorts_then_concatenates() {
        let vs = vec![Value::str("bb"), Value::str("a"), Value::str("c")];
        assert_eq!(agg("lex_concat").apply(&vs).unwrap(), Value::str("abbc"));
    }

    #[test]
    fn lex_concat_requires_strings() {
        assert!(agg("lex_concat").apply(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn str_conversion_resolves_spans() {
        let mut docs = DocumentStore::new();
        let id = docs.intern("hello");
        let span = docs.span(id, 1, 4).unwrap();
        let ctx = IeContext::new(&mut docs);
        assert_eq!(
            conv("str").convert(&Value::Span(span), &ctx).unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            conv("str").convert(&Value::Int(7), &ctx).unwrap(),
            Value::str("7")
        );
    }

    #[test]
    fn len_conversion() {
        let mut docs = DocumentStore::new();
        let id = docs.intern("hello");
        let span = docs.span(id, 0, 2).unwrap();
        let ctx = IeContext::new(&mut docs);
        assert_eq!(
            conv("len").convert(&Value::Span(span), &ctx).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            conv("len").convert(&Value::str("abc"), &ctx).unwrap(),
            Value::Int(3)
        );
        assert!(conv("len").convert(&Value::Bool(true), &ctx).is_err());
    }
}
