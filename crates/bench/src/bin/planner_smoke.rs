//! Bench-smoke for the cost-based query planner: times four workloads
//! with the planner + regex prefilter ON against the same workloads
//! with both OFF, prints the planner-annotated `EvalProfile` of the
//! join workload, and writes the speedups to `BENCH_planner.json`
//! (first argument overrides the output path). CI uploads the file as
//! an artifact; the checked-in copy at the repo root records a
//! reference run.
//!
//! The arms:
//!
//! * **join** — `Q(x, z) <- A(x, y), B(y, z), C(z)`: textual order
//!   materializes a quadratic `A ⋈ B` intermediate; cost order starts
//!   from the 5-row `C`. A structural win, not a noise-level one.
//! * **tc** — transitive closure of a chain graph: planner-on reuses
//!   the `Edge` hash index across fixpoint rounds instead of
//!   rebuilding it every round.
//! * **rgx** — a literal-prefixed pattern over documents that never
//!   contain the literal: the prefilter answers each search with one
//!   `str::find`, the bare PikeVM scans every byte. Also structural.
//! * **covid** — the §4.2 clinical pipeline end to end; the planner
//!   must at minimum not slow it down.
//!
//! `--strict` (used for reference runs and CI) gates the structural
//! arms at ≥ 1.2x and the end-to-end arms at ≥ 0.8x (planner-on no
//! slower than planner-off, with generous shared-runner headroom).

use spannerlib_bench::{
    chain_graph, load_edges, load_join_workload, rare_pattern_session, JOIN_PROGRAM, RARE_PATTERN,
    TC_PROGRAM,
};
use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::spanner::SpannerPipeline;
use spannerlog_engine::{Session, TraceLevel};
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 8;
const JOIN_ROWS: usize = 2_000;
const CHAIN_LEN: usize = 192;
const RGX_DOCS: usize = 24;
const RGX_WORDS: usize = 2_000;
const COVID_DOCS: usize = 30;

/// Best-of-REPS wall-clock nanoseconds for `work` on a fresh session
/// produced by `setup`. Fact loading stays outside the timed region —
/// the planner only affects evaluation.
fn measure<S>(setup: impl Fn() -> S, work: impl Fn(&mut S)) -> u128 {
    (0..REPS)
        .map(|_| {
            let mut state = setup();
            let start = Instant::now();
            work(&mut state);
            start.elapsed().as_nanos()
        })
        .min()
        .expect("REPS > 0")
}

/// Times `program` on a session prepared by `load`, with the planner
/// and the regex prefilter both toggled by `on`. Evaluation is lazy, so
/// the timed region reads the `head` relation to force the fixpoint.
/// The prefilter switch is process-global, so it is restored before
/// returning.
fn measure_engine(on: bool, load: impl Fn(&mut Session), program: &str, head: &str) -> u128 {
    spannerlib_regex::prefilter::set_enabled(on);
    let ns = measure(
        || {
            let mut session = Session::builder().planner(on).build();
            load(&mut session);
            session
        },
        |session| {
            session.run(black_box(program)).unwrap();
            black_box(session.relation(head).unwrap().len());
        },
    );
    spannerlib_regex::prefilter::set_enabled(true);
    ns
}

fn main() {
    let mut strict = false;
    let mut out_path = "BENCH_planner.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--strict" {
            strict = true;
        } else {
            out_path = arg;
        }
    }

    let rgx_program = format!(r#"Hit(d, s) <- Texts(d, t), rgx("{RARE_PATTERN}", t) -> (s)"#);
    let chain = chain_graph(CHAIN_LEN);
    let corpus = generate_corpus(COVID_DOCS, 42);

    let join_on_ns = measure_engine(
        true,
        |s| load_join_workload(s, JOIN_ROWS),
        JOIN_PROGRAM,
        "Q",
    );
    let join_off_ns = measure_engine(
        false,
        |s| load_join_workload(s, JOIN_ROWS),
        JOIN_PROGRAM,
        "Q",
    );
    let tc_on_ns = measure_engine(true, |s| load_edges(s, &chain), TC_PROGRAM, "Path");
    let tc_off_ns = measure_engine(false, |s| load_edges(s, &chain), TC_PROGRAM, "Path");

    spannerlib_regex::prefilter::set_enabled(true);
    let rgx_on_ns = measure(
        || rare_pattern_session(RGX_DOCS, RGX_WORDS, true),
        |session| {
            session.run(black_box(rgx_program.as_str())).unwrap();
            black_box(session.relation("Hit").unwrap().len());
        },
    );
    spannerlib_regex::prefilter::set_enabled(false);
    let rgx_off_ns = measure(
        || rare_pattern_session(RGX_DOCS, RGX_WORDS, false),
        |session| {
            session.run(black_box(rgx_program.as_str())).unwrap();
            black_box(session.relation("Hit").unwrap().len());
        },
    );
    spannerlib_regex::prefilter::set_enabled(true);

    let covid_on_ns = measure(
        || SpannerPipeline::with_config(TraceLevel::Off, true, None).expect("pipeline builds"),
        |pipeline| {
            black_box(
                pipeline
                    .classify_corpus(&corpus)
                    .expect("corpus classifies"),
            );
        },
    );
    spannerlib_regex::prefilter::set_enabled(false);
    let covid_off_ns = measure(
        || SpannerPipeline::with_config(TraceLevel::Off, false, None).expect("pipeline builds"),
        |pipeline| {
            black_box(
                pipeline
                    .classify_corpus(&corpus)
                    .expect("corpus classifies"),
            );
        },
    );
    spannerlib_regex::prefilter::set_enabled(true);

    // One traced run of the join workload for the printed plan lines
    // and the planner counters that land in the JSON.
    let mut traced = Session::builder().tracing(TraceLevel::Summary).build();
    load_join_workload(&mut traced, JOIN_ROWS);
    traced.run(JOIN_PROGRAM).unwrap();
    traced.relation("Q").unwrap();
    let profile = traced.profile().expect("summary tracing yields a profile");
    println!("{}", profile.render());

    let join_speedup = join_off_ns as f64 / join_on_ns as f64;
    let tc_speedup = tc_off_ns as f64 / tc_on_ns as f64;
    let rgx_speedup = rgx_off_ns as f64 / rgx_on_ns as f64;
    let covid_speedup = covid_off_ns as f64 / covid_on_ns as f64;
    let json = format!(
        "{{\n  \"bench\": \"planner_on_vs_off\",\n  \"reps_per_arm\": {REPS},\n  \
         \"join_rows\": {JOIN_ROWS},\n  \"join_on_ns\": {join_on_ns},\n  \
         \"join_off_ns\": {join_off_ns},\n  \"join_speedup\": {join_speedup:.3},\n  \
         \"tc_chain_len\": {CHAIN_LEN},\n  \"tc_on_ns\": {tc_on_ns},\n  \
         \"tc_off_ns\": {tc_off_ns},\n  \"tc_speedup\": {tc_speedup:.3},\n  \
         \"rgx_docs\": {RGX_DOCS},\n  \"rgx_on_ns\": {rgx_on_ns},\n  \
         \"rgx_off_ns\": {rgx_off_ns},\n  \"rgx_speedup\": {rgx_speedup:.3},\n  \
         \"covid_docs\": {COVID_DOCS},\n  \"covid_on_ns\": {covid_on_ns},\n  \
         \"covid_off_ns\": {covid_off_ns},\n  \"covid_speedup\": {covid_speedup:.3},\n  \
         \"join_indexes_built\": {},\n  \"join_indexes_reused\": {}\n}}\n",
        profile.index_builds, profile.index_hits,
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    print!("{json}");

    // Structural arms carry a large margin (an asymptotic difference,
    // not a constant factor), so they are gated at the acceptance bar;
    // end-to-end arms only assert "no slower" with noise headroom.
    let mut failures = Vec::new();
    for (arm, speedup, floor) in [
        ("join", join_speedup, 1.2),
        ("rgx", rgx_speedup, 1.2),
        ("tc", tc_speedup, 0.8),
        ("covid", covid_speedup, 0.8),
    ] {
        if speedup < floor {
            failures.push(format!(
                "planner-on {arm} speedup {speedup:.3}x below the {floor}x gate"
            ));
        }
    }
    if !failures.is_empty() {
        let msg = failures.join("; ");
        if strict {
            panic!("{msg}");
        }
        eprintln!("warning: {msg}");
    }
}
