//! Regenerates **Table 1** of the paper: the lines-of-code comparison
//! between the imperative COVID-19 pipeline and its SpannerLib rewrite,
//! printed with the paper's numbers side by side.
//!
//! Also verifies, before printing, that the comparison is between
//! *equivalent* implementations: both pipelines are run over a seeded
//! corpus and must classify identically.
//!
//! Usage: `cargo run -p spannerlib-bench --bin table1`

use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::loc;
use spannerlib_covid::native::NativePipeline;
use spannerlib_covid::spanner::SpannerPipeline;

fn main() {
    // Equivalence gate: the LoC comparison is only meaningful if the two
    // implementations agree.
    let docs = generate_corpus(80, 4242);
    let native = NativePipeline::new().classify_corpus(&docs);
    let rewritten = SpannerPipeline::new()
        .expect("spanner pipeline builds")
        .classify_corpus(&docs)
        .expect("spanner pipeline runs");
    let disagreements = native
        .iter()
        .zip(&rewritten)
        .filter(|(n, s)| n.status != s.status)
        .count();
    println!(
        "equivalence check: {}/{} documents agree ({} disagreements)\n",
        docs.len() - disagreements,
        docs.len(),
        disagreements
    );
    assert_eq!(
        disagreements, 0,
        "pipelines must agree before comparing LoC"
    );

    println!("{}", loc::render_table1());
}
