//! Bench-smoke for split-correct shard-parallel evaluation: times the
//! §4.2 clinical pipeline end to end on a ×8-scaled corpus with the
//! evaluator pinned serial against pools of 2, 4, and 8 workers, checks
//! every arm classifies the corpus identically to the serial run, and
//! writes the speedups to `BENCH_parallel.json` (first argument
//! overrides the output path). CI uploads the file as an artifact; the
//! checked-in copy at the repo root records a reference run.
//!
//! Each of the eight corpus copies perturbs its note texts and ids, so
//! neither the document interner nor the IE memo can collapse the
//! copies — the parallel arms must actually extract eight corpora's
//! worth of spans.
//!
//! `--strict` (used for reference runs and CI) gates the 4-worker arm
//! at ≥ 1.8x over serial — provided the host exposes at least 4 CPUs.
//! On smaller hosts there is no hardware to saturate and the parallel
//! path pays its shared-lock and scheduling overhead with nothing to
//! overlap, so the gate degrades to "bounded overhead" (≥ 0.75x), and
//! the JSON records `host_cores` so readers can tell which gate a
//! reference file was held to.

use spannerlib_covid::corpus::{generate_corpus, CorpusDoc};
use spannerlib_covid::spanner::SpannerPipeline;
use spannerlog_engine::TraceLevel;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 5;
const BASE_DOCS: usize = 30;
const SCALE: usize = 8;

/// Best-of-REPS wall-clock nanoseconds for `work` on fresh state from
/// `setup`. Pipeline construction (parsing, planning, CSV loads) stays
/// outside the timed region — parallelism only affects evaluation.
fn measure<S>(setup: impl Fn() -> S, work: impl Fn(&mut S)) -> u128 {
    (0..REPS)
        .map(|_| {
            let mut state = setup();
            let start = Instant::now();
            work(&mut state);
            start.elapsed().as_nanos()
        })
        .min()
        .expect("REPS > 0")
}

/// The base corpus replicated `SCALE` times with per-copy perturbed
/// ids and texts (a distinct benign suffix sentence), defeating both
/// document interning and IE memoization across copies.
fn scaled_corpus() -> Vec<CorpusDoc> {
    let base = generate_corpus(BASE_DOCS, 42);
    (0..SCALE)
        .flat_map(|copy| {
            base.iter().map(move |doc| {
                let mut d = doc.clone();
                d.id = format!("{}_c{copy}", d.id);
                d.text = format!("{} Batch marker b{copy} filed.", d.text);
                d
            })
        })
        .collect()
}

/// Times a full classify pass at `workers` (0 pins serial) and returns
/// the best-of-REPS time plus one run's results for the equality check.
fn measure_arm(
    corpus: &[CorpusDoc],
    workers: usize,
) -> (u128, Vec<spannerlib_covid::classify::DocumentResult>) {
    let build = || {
        SpannerPipeline::with_config(TraceLevel::Off, true, Some(workers)).expect("pipeline builds")
    };
    let ns = measure(build, |pipeline| {
        black_box(pipeline.classify_corpus(corpus).expect("corpus classifies"));
    });
    let results = build().classify_corpus(corpus).expect("corpus classifies");
    (ns, results)
}

fn main() {
    let mut strict = false;
    let mut out_path = "BENCH_parallel.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--strict" {
            strict = true;
        } else {
            out_path = arg;
        }
    }

    let corpus = scaled_corpus();
    let docs = corpus.len();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (serial_ns, serial_results) = measure_arm(&corpus, 0);
    let (w2_ns, w2_results) = measure_arm(&corpus, 2);
    let (w4_ns, w4_results) = measure_arm(&corpus, 4);
    let (w8_ns, w8_results) = measure_arm(&corpus, 8);

    // Parallelism must be semantically invisible on the full clinical
    // workload: every arm classifies every document identically.
    for (workers, results) in [(2, &w2_results), (4, &w4_results), (8, &w8_results)] {
        assert_eq!(
            &serial_results, results,
            "{workers}-worker arm diverged from the serial classification"
        );
    }

    let w2_speedup = serial_ns as f64 / w2_ns as f64;
    let w4_speedup = serial_ns as f64 / w4_ns as f64;
    let w8_speedup = serial_ns as f64 / w8_ns as f64;
    let json = format!(
        "{{\n  \"bench\": \"parallel_serial_vs_workers\",\n  \
         \"reps_per_arm\": {REPS},\n  \"docs\": {docs},\n  \
         \"host_cores\": {host_cores},\n  \"serial_ns\": {serial_ns},\n  \
         \"w2_ns\": {w2_ns},\n  \"w2_speedup\": {w2_speedup:.3},\n  \
         \"w4_ns\": {w4_ns},\n  \"w4_speedup\": {w4_speedup:.3},\n  \
         \"w8_ns\": {w8_ns},\n  \"w8_speedup\": {w8_speedup:.3}\n}}\n",
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    print!("{json}");

    // The headline gate: 4 workers must beat serial by ≥ 1.8x where the
    // hardware makes that possible; degraded hosts only assert the
    // parallel path's overhead stays bounded.
    let floor = if host_cores >= 4 { 1.8 } else { 0.75 };
    if w4_speedup < floor {
        let msg = format!(
            "4-worker speedup {w4_speedup:.3}x below the {floor}x gate \
             ({host_cores} host cores)"
        );
        if strict {
            panic!("{msg}");
        }
        eprintln!("warning: {msg}");
    }
}
