//! Bench-smoke for the IE memo cache: runs the repeated-document
//! extraction workload once with the cache disabled (cold arm) and once
//! enabled (warm arm), and writes hit-rate and speedup to
//! `BENCH_cache.json` (first argument overrides the output path). CI
//! uploads the file as an artifact; the checked-in copy at the repo
//! root records a reference run.
//!
//! Each iteration bumps a `Tick` relation the program reads, forcing a
//! full fixpoint rerun over an unchanged document corpus — the serving
//! shape where memoization pays: the cold arm re-pays regex extraction
//! every round, the warm arm replays memoized outputs.

use spannerlib_bench::{cache_churn_session, cache_tick};
use std::hint::black_box;
use std::time::Instant;

const DOCS: usize = 8;
const WORDS_PER_DOC: usize = 250;
const ITERATIONS: usize = 25;
const REPS: usize = 10;
const WARM_CACHE_BYTES: usize = 16 * 1024 * 1024;

/// Best-of-REPS wall-clock nanoseconds for `ITERATIONS` forced reruns.
/// Each rep gets a fresh session so the cold arm stays cold; the warm
/// arm's first execution (the memo fill) happens before timing starts,
/// mirroring a serving process past its warm-up.
fn measure(cache_bytes: usize) -> u128 {
    (0..REPS)
        .map(|rep| {
            let (mut session, query) = cache_churn_session(DOCS, WORDS_PER_DOC, cache_bytes);
            query.execute(&mut session).unwrap(); // warm-up / memo fill
            let start = Instant::now();
            for i in 0..ITERATIONS {
                cache_tick(&mut session, (rep * ITERATIONS + i) as i64);
                black_box(query.execute(&mut session).unwrap());
            }
            start.elapsed().as_nanos()
        })
        .min()
        .expect("REPS > 0")
}

fn main() {
    let mut strict = false;
    let mut out_path = "BENCH_cache.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--strict" {
            strict = true;
        } else {
            out_path = arg;
        }
    }

    let cold_ns = measure(0);
    let warm_ns = measure(WARM_CACHE_BYTES);

    // One extra instrumented warm run for the hit-rate numbers.
    let (mut session, query) = cache_churn_session(DOCS, WORDS_PER_DOC, WARM_CACHE_BYTES);
    query.execute(&mut session).unwrap();
    for i in 0..ITERATIONS {
        cache_tick(&mut session, i as i64);
        query.execute(&mut session).unwrap();
    }
    let stats = session.stats().cache;

    let speedup = cold_ns as f64 / warm_ns as f64;
    let json = format!(
        "{{\n  \"bench\": \"ie_cache_cold_vs_warm\",\n  \"docs\": {DOCS},\n  \
         \"iterations_per_arm\": {ITERATIONS},\n  \"cold_loop_ns\": {cold_ns},\n  \
         \"warm_loop_ns\": {warm_ns},\n  \"speedup_warm_over_cold\": {speedup:.2},\n  \
         \"warm_hits\": {},\n  \"warm_misses\": {},\n  \"warm_hit_rate\": {:.4},\n  \
         \"warm_evictions\": {},\n  \"warm_cache_bytes\": {}\n}}\n",
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        stats.evictions,
        stats.bytes,
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    print!("{json}");

    if speedup < 2.0 {
        // Relative wall-clock comparisons are noisy on shared CI
        // runners, so only `--strict` (used for reference runs) turns a
        // losing sample into a failure; the default run records the
        // numbers either way.
        let msg = format!(
            "warm-over-cold speedup {speedup:.2}x below the 2x target \
             (cold {cold_ns} ns vs warm {warm_ns} ns)"
        );
        if strict {
            panic!("{msg}");
        }
        eprintln!("warning: {msg}");
    }
}
