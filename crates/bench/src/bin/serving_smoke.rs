//! Bench-smoke for the spannerd serving front end: boots a server on an
//! ephemeral port with the §4.2 clinical pipeline as its session,
//! imports the covid corpus and prepares `?Status(d, s)` over the wire,
//! then measures `/execute` throughput and client-side latency with 1
//! and 4 keep-alive client threads. Writes `BENCH_serving.json` (first
//! argument overrides the output path); CI uploads it as an artifact.
//!
//! `--strict` (reference runs and CI) gates:
//! * p99 request latency stays bounded (< 250 ms on an idle snapshot);
//! * the 4-thread arm reaches ≥ 1.5x the 1-thread QPS — provided the
//!   host exposes at least 4 CPUs. Smaller hosts have nothing to
//!   overlap, so the scaling gate degrades to "no collapse" (≥ 0.6x)
//!   and the JSON records `host_cores` so readers can tell which gate a
//!   reference file was held to.
//!
//! The smoke also scrapes `/metrics` after the arms, gates that the
//! exposition body parses and is non-empty, and records the scrape
//! latency in the JSON. `--check-exposition FILE` skips the benchmark
//! entirely and just validates FILE as a Prometheus text-format body —
//! CI's boot check uses it to gate a live `curl /metrics` capture.

use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::spanner::SpannerPipeline;
use spannerlib_serve::{Client, Json, ServeConfig, Server};
use spannerlog_engine::TraceLevel;
use std::net::SocketAddr;
use std::time::Instant;

const DOCS: usize = 60;
const REQS_PER_THREAD: usize = 300;

/// One measured arm: `threads` keep-alive clients, each issuing
/// `REQS_PER_THREAD` `/execute` requests against the prepared query.
/// Returns (wall nanoseconds, per-request latencies in nanoseconds).
fn run_arm(addr: SocketAddr, threads: usize) -> (u128, Vec<u64>) {
    let start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    let body = Json::parse(r#"{"prepared": "status"}"#).expect("static body");
                    let mut lats = Vec::with_capacity(REQS_PER_THREAD);
                    for _ in 0..REQS_PER_THREAD {
                        let t = Instant::now();
                        let resp = client.post("/execute", &body).expect("execute");
                        assert_eq!(resp.status, 200, "{}", resp.body);
                        lats.push(t.elapsed().as_nanos() as u64);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed().as_nanos();
    latencies.sort_unstable();
    (wall, latencies)
}

/// The `p`-th percentile (0..=100) of sorted nanosecond latencies.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * p / 100).min(sorted.len() - 1);
    sorted[idx]
}

/// `--check-exposition FILE`: validate FILE as Prometheus text format
/// and exit. Non-zero on parse failure or an empty body, so CI can pipe
/// a live `/metrics` capture straight through.
fn check_exposition_file(path: &str) -> ! {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("serving_smoke: read {path}: {e}");
        std::process::exit(1)
    });
    match spannerlib_trace::check_exposition(&body) {
        Ok(stats) if stats.samples > 0 => {
            println!(
                "{path}: valid exposition, {} samples across {} families",
                stats.samples, stats.families
            );
            std::process::exit(0)
        }
        Ok(_) => {
            eprintln!("serving_smoke: {path}: exposition body has no samples");
            std::process::exit(1)
        }
        Err(e) => {
            eprintln!("serving_smoke: {path}: invalid exposition: {e}");
            std::process::exit(1)
        }
    }
}

fn main() {
    let mut strict = false;
    let mut out_path = "BENCH_serving.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--strict" {
            strict = true;
        } else if arg == "--check-exposition" {
            let Some(path) = args.next() else {
                eprintln!("serving_smoke: --check-exposition needs a FILE");
                std::process::exit(2)
            };
            check_exposition_file(&path);
        } else {
            out_path = arg;
        }
    }

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The serving session is the full clinical pipeline; the server
    // owns it and every mutation below travels over the wire.
    let session = SpannerPipeline::with_config(TraceLevel::Off, true, None)
        .expect("pipeline builds")
        .into_session();
    let server = Server::bind(
        session,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            // Keep-alive connections pin workers; leave headroom above
            // the widest arm (4 clients + the setup connection).
            workers: 8,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.serve().expect("serve"));

    // Import the corpus and prepare the status query over HTTP.
    let mut setup = Client::new(addr);
    let corpus = generate_corpus(DOCS, 42);
    let rows: Vec<Json> = corpus
        .iter()
        .map(|d| Json::Arr(vec![Json::str(d.id.as_str()), Json::str(d.text.as_str())]))
        .collect();
    let import = Json::Obj(vec![
        ("relation".into(), Json::str("Notes")),
        ("rows".into(), Json::Arr(rows)),
    ]);
    let resp = setup.post("/import", &import).expect("import");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let resp = setup
        .post(
            "/prepare",
            &Json::parse(r#"{"name": "status", "query": "?Status(d, s)"}"#).unwrap(),
        )
        .expect("prepare");
    assert_eq!(resp.status, 200, "{}", resp.body);

    // Warm-up execute: pays the one coalesced evaluation of the import,
    // so the measured arms read published snapshots only.
    let warm = setup
        .post(
            "/execute",
            &Json::parse(r#"{"prepared": "status"}"#).unwrap(),
        )
        .expect("warm-up execute");
    assert_eq!(warm.status, 200, "{}", warm.body);
    let served_docs = warm
        .json()
        .expect("warm-up body parses")
        .get("row_count")
        .and_then(Json::as_i64)
        .expect("row_count");
    assert_eq!(served_docs as usize, DOCS, "every document classified");
    drop(setup); // frees its pool worker before the arms

    let (t1_wall, t1_lats) = run_arm(addr, 1);
    let (t4_wall, t4_lats) = run_arm(addr, 4);

    // Scrape /metrics after the arms: the body must parse as Prometheus
    // text format and actually carry the request samples just recorded.
    // The scrape latency (connection + encode + transfer) lands in the
    // bench JSON so encoder-cost regressions show up in reference runs.
    let scrape_start = Instant::now();
    let scrape = Client::new(addr).get("/metrics").expect("metrics scrape");
    let metrics_scrape_us = scrape_start.elapsed().as_micros();
    assert_eq!(scrape.status, 200, "{}", scrape.body);
    let expo = spannerlib_trace::check_exposition(&scrape.body)
        .unwrap_or_else(|e| panic!("/metrics body does not parse: {e}\n{}", scrape.body));
    assert!(expo.samples > 0, "/metrics body is empty");
    assert!(
        scrape.body.contains("http_requests_total"),
        "request counters missing from exposition:\n{}",
        scrape.body
    );

    handle.shutdown();
    server_thread.join().expect("server thread");

    let t1_qps = t1_lats.len() as f64 / (t1_wall as f64 / 1e9);
    let t4_qps = t4_lats.len() as f64 / (t4_wall as f64 / 1e9);
    let qps_scaling = t4_qps / t1_qps;
    let (t1_p50, t1_p99) = (percentile(&t1_lats, 50), percentile(&t1_lats, 99));
    let (t4_p50, t4_p99) = (percentile(&t4_lats, 50), percentile(&t4_lats, 99));

    let json = format!(
        "{{\n  \"bench\": \"serving_execute_qps\",\n  \
         \"docs\": {DOCS},\n  \"reqs_per_thread\": {REQS_PER_THREAD},\n  \
         \"host_cores\": {host_cores},\n  \
         \"t1_qps\": {t1_qps:.1},\n  \"t1_p50_ns\": {t1_p50},\n  \
         \"t1_p99_ns\": {t1_p99},\n  \
         \"t4_qps\": {t4_qps:.1},\n  \"t4_p50_ns\": {t4_p50},\n  \
         \"t4_p99_ns\": {t4_p99},\n  \"qps_scaling\": {qps_scaling:.3},\n  \
         \"metrics_scrape_us\": {metrics_scrape_us},\n  \
         \"metrics_samples\": {samples}\n}}\n",
        samples = expo.samples,
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    print!("{json}");

    // Gate 1: tail latency stays bounded on an idle snapshot.
    const P99_CEILING_NS: u64 = 250_000_000;
    if t4_p99 > P99_CEILING_NS {
        let msg = format!("4-thread p99 {t4_p99}ns above the {P99_CEILING_NS}ns ceiling");
        if strict {
            panic!("{msg}");
        }
        eprintln!("warning: {msg}");
    }

    // Gate 2: snapshot reads must scale with client threads where the
    // hardware allows it; degraded hosts only assert no collapse.
    let floor = if host_cores >= 4 { 1.5 } else { 0.6 };
    if qps_scaling < floor {
        let msg = format!(
            "QPS scaling {qps_scaling:.3}x below the {floor}x gate ({host_cores} host cores)"
        );
        if strict {
            panic!("{msg}");
        }
        eprintln!("warning: {msg}");
    }
}
