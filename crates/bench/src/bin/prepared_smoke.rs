//! Bench-smoke: runs the prepared-vs-export workload once and writes
//! the timings to `BENCH_prepared.json` (first argument overrides the
//! output path). CI uploads the file as an artifact; the checked-in
//! copy at the repo root records a reference run.
//!
//! Same workload as `benches/bench_prepared.rs`: 100 query executions
//! per arm, best of `REPS` repetitions to shed scheduler noise.

use spannerlib_bench::{email_session, EMAIL_QUERY};
use std::hint::black_box;
use std::time::Instant;

const ITERATIONS: usize = 100;
const REPS: usize = 30;

/// Best-of-REPS wall-clock nanoseconds for one run of `f`.
fn measure(mut f: impl FnMut()) -> u128 {
    // Warmup.
    f();
    (0..REPS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .min()
        .expect("REPS > 0")
}

fn main() {
    let mut strict = false;
    let mut out_path = "BENCH_prepared.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--strict" {
            strict = true;
        } else {
            out_path = arg;
        }
    }

    let export_ns = {
        let mut session = email_session(6, 60);
        session.export(EMAIL_QUERY).unwrap();
        measure(|| {
            for _ in 0..ITERATIONS {
                black_box(session.export(black_box(EMAIL_QUERY)).unwrap());
            }
        })
    };

    let prepared_ns = {
        let mut session = email_session(6, 60);
        let query = session.prepare(EMAIL_QUERY).unwrap();
        query.execute(&mut session).unwrap();
        measure(|| {
            for _ in 0..ITERATIONS {
                black_box(query.execute(&mut session).unwrap());
            }
        })
    };

    let snapshot_ns = {
        let mut session = email_session(6, 60);
        let query = session.prepare(EMAIL_QUERY).unwrap();
        let snapshot = session.snapshot().unwrap();
        measure(|| {
            for _ in 0..ITERATIONS {
                black_box(snapshot.execute(&query).unwrap());
            }
        })
    };

    let speedup = export_ns as f64 / prepared_ns as f64;
    let json = format!(
        "{{\n  \"bench\": \"prepared_vs_export\",\n  \"iterations_per_arm\": {ITERATIONS},\n  \
         \"export_loop_ns\": {export_ns},\n  \"prepared_loop_ns\": {prepared_ns},\n  \
         \"snapshot_loop_ns\": {snapshot_ns},\n  \
         \"speedup_prepared_over_export\": {speedup:.2}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    print!("{json}");
    if prepared_ns >= export_ns {
        // A relative wall-clock comparison is noisy on shared CI
        // runners, so only `--strict` (used for reference runs) turns a
        // losing sample into a failure; the default run records the
        // numbers either way.
        let msg = format!(
            "prepared execution did not beat export-in-a-loop \
             (prepared {prepared_ns} ns vs export {export_ns} ns)"
        );
        if strict {
            panic!("{msg}");
        }
        eprintln!("warning: {msg}");
    }
}
