//! Runs every reproduced artifact of the paper and prints a
//! paper-vs-measured report — the source of EXPERIMENTS.md.
//!
//! Usage: `cargo run -p spannerlib-bench --bin experiments --release`

use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::loc;
use spannerlib_covid::native::report::SurveillanceReport;
use spannerlib_covid::native::NativePipeline;
use spannerlib_covid::spanner::SpannerPipeline;
use spannerlib_regex::Regex;
use spannerlog_engine::{EvalStrategy, Session};
use std::time::Instant;

fn heading(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    // ---------------------------------------------------------------
    heading("Exp. §2 — the worked rgx example (exactness check)");
    let re = Regex::new("x{a+}c+y{b+}").unwrap();
    let d = "acb aacccbbb";
    let rows: Vec<Vec<Option<(usize, usize)>>> = re
        .captures_iter(d)
        .map(|c| c.explicit_groups().collect())
        .collect();
    println!("pattern x{{a+}}c+y{{b+}} over {d:?}:");
    for row in &rows {
        println!("  {row:?}");
    }
    let expect = vec![
        vec![Some((0, 1)), Some((2, 3))],
        vec![Some((4, 6)), Some((9, 12))],
    ];
    println!(
        "paper expects [(0,1),(2,3)] and [(4,6),(9,12)] → {}",
        if rows == expect {
            "MATCH (exact)"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(rows, expect);

    // ---------------------------------------------------------------
    heading("Exp. Table 1 — lines-of-code comparison");
    let docs = generate_corpus(150, 42);
    let native = NativePipeline::new();
    let t0 = Instant::now();
    let native_results = native.classify_corpus(&docs);
    let native_time = t0.elapsed();
    let mut spanner = SpannerPipeline::new().unwrap();
    let t0 = Instant::now();
    let spanner_results = spanner.classify_corpus(&docs).unwrap();
    let spanner_time = t0.elapsed();
    let agree = native_results
        .iter()
        .zip(&spanner_results)
        .filter(|(n, s)| n.status == s.status && n.mentions == s.mentions)
        .count();
    println!(
        "equivalence: {agree}/{} docs identical (status AND mention evidence)",
        docs.len()
    );
    println!(
        "gold accuracy: native {:.3}, spannerlib {:.3}",
        native.accuracy(&docs),
        spanner.accuracy(&docs).unwrap()
    );
    println!();
    println!("{}", loc::render_table1());

    // ---------------------------------------------------------------
    heading("Demo: surveillance statistics (imperative folds vs aggregation rules)");
    let report = SurveillanceReport::build(&native_results);
    println!("{report}");
    let counts = spanner.session_mut().export("?StatusCount(s, n)").unwrap();
    println!("\nStatusCount(s, count(d)) <- Status(d, s):\n{counts}");

    // ---------------------------------------------------------------
    heading("Ablation A — naive vs semi-naive evaluation (transitive closure)");
    println!(
        "{:>8} {:>14} {:>14} {:>9} {:>9}",
        "chain n", "naive", "semi-naive", "rounds", "firings"
    );
    for n in [16usize, 32, 64] {
        let edges = spannerlib_bench::chain_graph(n);
        let mut naive_time = std::time::Duration::ZERO;
        let mut semi_time = std::time::Duration::ZERO;
        let mut stats = (0usize, 0usize);
        for (strategy, slot) in [
            (EvalStrategy::Naive, 0usize),
            (EvalStrategy::SemiNaive, 1usize),
        ] {
            let mut session = Session::with_strategy(strategy);
            spannerlib_bench::load_edges(&mut session, &edges);
            session.run(spannerlib_bench::TC_PROGRAM).unwrap();
            let t0 = Instant::now();
            session.ensure_evaluated().unwrap();
            let dt = t0.elapsed();
            if slot == 0 {
                naive_time = dt;
            } else {
                semi_time = dt;
                stats = (
                    session.stats().eval.rounds,
                    session.stats().eval.rule_firings,
                );
            }
        }
        println!(
            "{:>8} {:>12.2?} {:>12.2?} {:>9} {:>9}",
            n, naive_time, semi_time, stats.0, stats.1
        );
    }
    println!("expected shape: semi-naive ≤ naive, gap growing with n  ✓/✗ above");

    // ---------------------------------------------------------------
    heading("Ablation B — findall vs all-matches regex semantics");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10}",
        "doc len", "findall", "all-match", "rows(f)", "rows(a)"
    );
    for n in [64usize, 128, 256] {
        let doc = spannerlib_bench::uniform_document('a', n);
        let re = Regex::new("x{a+}").unwrap();
        let t0 = Instant::now();
        let rows_f = re.find_iter(&doc).count();
        let t_f = t0.elapsed();
        let t0 = Instant::now();
        let rows_a = re.all_matches(&doc).len();
        let t_a = t0.elapsed();
        println!(
            "{:>8} {:>10.2?} {:>10.2?} {:>10} {:>10}",
            n, t_f, t_a, rows_f, rows_a
        );
    }
    println!("expected shape: findall linear rows, all-matches quadratic rows");

    // ---------------------------------------------------------------
    heading("Ablation C — imperative vs declarative pipeline throughput");
    println!(
        "corpus of {} notes: native {:?} ({:.1} docs/ms), spannerlib {:?} ({:.2} docs/ms)",
        docs.len(),
        native_time,
        docs.len() as f64 / native_time.as_millis().max(1) as f64,
        spanner_time,
        docs.len() as f64 / spanner_time.as_millis().max(1) as f64,
    );
    println!(
        "declarative overhead: {:.1}x — expected shape: native faster (paper §6 \
         concedes the engine does not emphasise performance)",
        spanner_time.as_secs_f64() / native_time.as_secs_f64()
    );
}
