//! Bench-smoke for the tracing subsystem: classifies the seeded COVID
//! corpus (§4.2 case study) at each [`TraceLevel`], prints the rendered
//! per-rule `EvalProfile`, and writes the overheads to
//! `BENCH_trace.json` (first argument overrides the output path). CI
//! uploads the file as an artifact; the checked-in copy at the repo
//! root records a reference run.
//!
//! The headline number is **`off_overhead`**: tracing instrumentation
//! is compiled in unconditionally, so the cost of having it *disabled*
//! is measured by running two identical `Off` arms — their ratio is the
//! noise floor plus whatever the dormant probes cost, and `--strict`
//! gates it at ≤ 1.05. `summary_overhead` / `spans_overhead` record
//! what turning the knob actually buys into.

use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::spanner::SpannerPipeline;
use spannerlog_engine::TraceLevel;
use std::hint::black_box;
use std::time::Instant;

const DOCS: usize = 30;
const REPS: usize = 8;

/// Best-of-REPS wall-clock nanoseconds for one corpus classification at
/// `level`. Pipeline construction (CSV parsing, rule compilation) stays
/// outside the timed region — the knob only affects evaluation.
fn measure(level: TraceLevel, docs: &[spannerlib_covid::corpus::CorpusDoc]) -> u128 {
    (0..REPS)
        .map(|_| {
            let mut pipeline = SpannerPipeline::with_tracing(level).expect("pipeline builds");
            let start = Instant::now();
            black_box(pipeline.classify_corpus(docs).expect("corpus classifies"));
            start.elapsed().as_nanos()
        })
        .min()
        .expect("REPS > 0")
}

fn main() {
    let mut strict = false;
    let mut out_path = "BENCH_trace.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--strict" {
            strict = true;
        } else {
            out_path = arg;
        }
    }

    let docs = generate_corpus(DOCS, 42);

    let off_baseline_ns = measure(TraceLevel::Off, &docs);
    let off_check_ns = measure(TraceLevel::Off, &docs);
    let summary_ns = measure(TraceLevel::Summary, &docs);
    let spans_ns = measure(TraceLevel::Spans, &docs);

    // One instrumented run for the printed profile and span counts.
    let mut pipeline = SpannerPipeline::with_tracing(TraceLevel::Spans).expect("pipeline builds");
    pipeline.classify_corpus(&docs).expect("corpus classifies");
    let profile = pipeline.profile().expect("Spans level yields a profile");
    println!("{}", profile.render());

    let off_overhead = off_check_ns as f64 / off_baseline_ns as f64;
    let summary_overhead = summary_ns as f64 / off_baseline_ns as f64;
    let spans_overhead = spans_ns as f64 / off_baseline_ns as f64;
    let json = format!(
        "{{\n  \"bench\": \"trace_overhead_covid\",\n  \"docs\": {DOCS},\n  \
         \"reps_per_arm\": {REPS},\n  \"off_baseline_ns\": {off_baseline_ns},\n  \
         \"off_check_ns\": {off_check_ns},\n  \"summary_ns\": {summary_ns},\n  \
         \"spans_ns\": {spans_ns},\n  \"off_overhead\": {off_overhead:.3},\n  \
         \"summary_overhead\": {summary_overhead:.3},\n  \
         \"spans_overhead\": {spans_overhead:.3},\n  \"profile_rounds\": {},\n  \
         \"profile_rule_firings\": {},\n  \"spans_recorded\": {},\n  \
         \"spans_dropped\": {}\n}}\n",
        profile.rounds,
        profile.rule_firings,
        profile.spans.len(),
        profile.spans_dropped,
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    print!("{json}");

    if off_overhead > 1.05 {
        // Relative wall-clock comparisons are noisy on shared CI
        // runners, so only `--strict` (used for reference runs) turns a
        // losing sample into a failure; the default run records the
        // numbers either way.
        let msg = format!(
            "tracing-off overhead {off_overhead:.3}x above the 1.05x gate \
             (baseline {off_baseline_ns} ns vs check {off_check_ns} ns)"
        );
        if strict {
            panic!("{msg}");
        }
        eprintln!("warning: {msg}");
    }
}
