//! Ablation D (DESIGN.md): the cost of the IE plumbing.
//!
//! The same email extraction measured three ways:
//!
//! * `direct` — calling the regex library in a Rust loop (floor);
//! * `through_rule` — the §3.2 rule through the full engine (parse,
//!   safety, plan, IE dispatch, set semantics);
//! * `callback` — a registered host closure instead of the builtin, to
//!   price the callback indirection itself.
//!
//! Expected shape: direct < through_rule ≈ callback, with the declarative
//! overhead shrinking per-byte as documents grow (fixed per-rule costs
//! amortize).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spannerlib_bench::email_document;
use spannerlib_core::Value;
use spannerlib_regex::Regex;
use spannerlog_engine::Session;
use std::hint::black_box;

const PATTERN: &str = r"(\w+)@(\w+)\.\w+";

fn bench_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("ie_direct");
    let re = Regex::new(PATTERN).unwrap();
    for words in [500usize, 2_000] {
        let doc = email_document(words, 1);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(words), &doc, |b, d| {
            b.iter(|| re.captures_iter(black_box(d)).count())
        });
    }
    group.finish();
}

fn bench_through_rule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ie_through_rule");
    group.sample_size(20);
    for words in [500usize, 2_000] {
        let doc = email_document(words, 1);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(words), &doc, |b, d| {
            b.iter(|| {
                let mut session = Session::new();
                session.run("new Texts(str)").unwrap();
                session.add_fact("Texts", [Value::str(d.as_str())]).unwrap();
                session
                    .run(r#"R(u, m) <- Texts(t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (u, m)"#)
                    .unwrap();
                session.relation("R").unwrap().len()
            })
        });
    }
    group.finish();
}

fn bench_callback(c: &mut Criterion) {
    let mut group = c.benchmark_group("ie_callback");
    group.sample_size(20);
    for words in [500usize, 2_000] {
        let doc = email_document(words, 1);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(words), &doc, |b, d| {
            b.iter(|| {
                let mut session = Session::new();
                let re = Regex::new(PATTERN).unwrap();
                session.register("emails", Some(1), move |args, _ctx| {
                    let text = args[0].as_str().unwrap_or_default().to_string();
                    Ok(re
                        .captures_iter(&text)
                        .map(|c| {
                            let (us, ue) = c.group(1).unwrap();
                            let (ds, de) = c.group(2).unwrap();
                            vec![Value::str(&text[us..ue]), Value::str(&text[ds..de])]
                        })
                        .collect())
                });
                session.run("new Texts(str)").unwrap();
                session.add_fact("Texts", [Value::str(d.as_str())]).unwrap();
                session
                    .run("R(u, m) <- Texts(t), emails(t) -> (u, m)")
                    .unwrap();
                session.relation("R").unwrap().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_direct, bench_through_rule, bench_callback);
criterion_main!(benches);
