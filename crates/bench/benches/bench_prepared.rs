//! Prepared-vs-export: the ISSUE 4 acceptance bench.
//!
//! One hundred `PreparedQuery::execute` calls against 100
//! `Session::export` calls on the same program and data. Export
//! re-parses the query text and re-validates the statement shape every
//! call; the prepared query did that work once at prepare time, and the
//! snapshot variant additionally skips the evaluation-fingerprint
//! check. Expected shape: prepared < export, snapshot ≤ prepared.
//!
//! The `prepared_smoke` binary runs the same workload once and records
//! the timings as `BENCH_prepared.json` (CI's bench-smoke step).

use criterion::{criterion_group, criterion_main, Criterion};
use spannerlib_bench::{email_session, EMAIL_QUERY};
use std::hint::black_box;

const ITERATIONS: usize = 100;

fn bench_prepared_vs_export(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepared_vs_export");
    group.sample_size(20);

    group.bench_function("export_100", |b| {
        let mut session = email_session(6, 60);
        session.export(EMAIL_QUERY).unwrap(); // steady state: fixpoint done
        b.iter(|| {
            for _ in 0..ITERATIONS {
                black_box(session.export(black_box(EMAIL_QUERY)).unwrap());
            }
        })
    });

    group.bench_function("prepared_100", |b| {
        let mut session = email_session(6, 60);
        let query = session.prepare(EMAIL_QUERY).unwrap();
        query.execute(&mut session).unwrap();
        b.iter(|| {
            for _ in 0..ITERATIONS {
                black_box(query.execute(&mut session).unwrap());
            }
        })
    });

    group.bench_function("snapshot_100", |b| {
        let mut session = email_session(6, 60);
        let query = session.prepare(EMAIL_QUERY).unwrap();
        let snapshot = session.snapshot().unwrap();
        b.iter(|| {
            for _ in 0..ITERATIONS {
                black_box(snapshot.execute(&query).unwrap());
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_prepared_vs_export);
criterion_main!(benches);
