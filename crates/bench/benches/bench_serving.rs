//! The spannerd serving path, measured per request:
//!
//! * `serving_execute/*` — one `/execute` of the prepared clinical
//!   status query over a warm keep-alive connection, at 1 and 4
//!   concurrent client threads (each iteration issues one request per
//!   thread).
//! * `serving_http_overhead` — `/healthz` round-trips: the floor the
//!   hand-rolled HTTP/JSON layer adds on top of snapshot execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::spanner::SpannerPipeline;
use spannerlib_serve::{Client, Json, ServeConfig, Server, ServerHandle};
use spannerlog_engine::TraceLevel;
use std::hint::black_box;
use std::net::SocketAddr;

/// Boots a server seeded with the clinical pipeline, imports the corpus
/// and prepares `?Status(d, s)` over the wire, and runs one warm-up
/// execute so the benched requests read a published snapshot.
fn boot() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let session = SpannerPipeline::with_config(TraceLevel::Off, true, None)
        .expect("pipeline builds")
        .into_session();
    let server = Server::bind(
        session,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));

    let mut setup = Client::new(addr);
    let corpus = generate_corpus(60, 42);
    let rows: Vec<Json> = corpus
        .iter()
        .map(|d| Json::Arr(vec![Json::str(d.id.as_str()), Json::str(d.text.as_str())]))
        .collect();
    let import = Json::Obj(vec![
        ("relation".into(), Json::str("Notes")),
        ("rows".into(), Json::Arr(rows)),
    ]);
    assert_eq!(setup.post("/import", &import).expect("import").status, 200);
    let prepare = Json::parse(r#"{"name": "status", "query": "?Status(d, s)"}"#).unwrap();
    assert_eq!(
        setup.post("/prepare", &prepare).expect("prepare").status,
        200
    );
    let execute = Json::parse(r#"{"prepared": "status"}"#).unwrap();
    assert_eq!(
        setup.post("/execute", &execute).expect("warm-up").status,
        200
    );
    (addr, handle, thread)
}

fn bench_execute(c: &mut Criterion) {
    let (addr, handle, thread) = boot();
    let mut group = c.benchmark_group("serving_execute");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                // Persistent keep-alive clients; each iteration issues
                // one concurrent request per client.
                let mut clients: Vec<Client> = (0..threads).map(|_| Client::new(addr)).collect();
                let body = Json::parse(r#"{"prepared": "status"}"#).expect("static body");
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for client in clients.iter_mut() {
                            let body = &body;
                            scope.spawn(move || {
                                let resp = client.post("/execute", body).expect("execute");
                                assert_eq!(resp.status, 200);
                                black_box(resp.body.len());
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
    handle.shutdown();
    thread.join().expect("server thread");
}

fn bench_http_overhead(c: &mut Criterion) {
    let (addr, handle, thread) = boot();
    let mut client = Client::new(addr);
    c.bench_function("serving_http_overhead", |b| {
        b.iter(|| {
            let resp = client.get("/healthz").expect("healthz");
            assert_eq!(resp.status, 200);
            black_box(resp.body.len());
        })
    });
    drop(client);
    handle.shutdown();
    thread.join().expect("server thread");
}

criterion_group!(benches, bench_execute, bench_http_overhead);
criterion_main!(benches);
