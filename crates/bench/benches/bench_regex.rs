//! Ablation B (DESIGN.md): the regex-formula engine.
//!
//! * `compile` — pattern → NFA cost (amortized away by the IE cache).
//! * `findall/*` — leftmost-first scan over growing documents: expected
//!   linear in document length.
//! * `allmatches/*` — formal spanner semantics on the quadratic-output
//!   worst case (`x{a+}` over `aⁿ`): expected superlinear, which is the
//!   semantic price of ⟦γ⟧(d) enumeration.
//! * `email/*` — the paper's §3.2 extraction pattern over realistic text.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spannerlib_bench::{email_document, uniform_document};
use spannerlib_regex::Regex;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex_compile");
    for pattern in [
        "x{a+}c+y{b+}",
        r"(\w+)@(\w+)\.\w+",
        "[a-z]+([0-9]{2,4}|x+)*",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(pattern), pattern, |b, p| {
            b.iter(|| Regex::new(black_box(p)).unwrap())
        });
    }
    group.finish();
}

fn bench_findall(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex_findall");
    let re = Regex::new("x{a+}c+y{b+}").unwrap();
    for n in [1_000usize, 4_000, 16_000] {
        let doc = "acb aacccbbb ".repeat(n / 13 + 1);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |b, d| {
            b.iter(|| re.find_iter(black_box(d)).count())
        });
    }
    group.finish();
}

fn bench_allmatches(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex_allmatches");
    let re = Regex::new("x{a+}").unwrap();
    for n in [32usize, 64, 128] {
        let doc = uniform_document('a', n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |b, d| {
            b.iter(|| re.all_matches(black_box(d)).len())
        });
    }
    group.finish();
}

fn bench_email(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex_email_extraction");
    let re = Regex::new(r"(\w+)@(\w+)\.\w+").unwrap();
    for words in [500usize, 2_000, 8_000] {
        let doc = email_document(words, 99);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(words), &doc, |b, d| {
            b.iter(|| re.captures_iter(black_box(d)).count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_findall,
    bench_allmatches,
    bench_email
);
criterion_main!(benches);
