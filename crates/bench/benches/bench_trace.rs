//! Tracing overhead on the §4.2 case study: the same corpus
//! classification at each [`TraceLevel`]. `Off` vs the untraceable
//! shape of older revisions is gated separately by `trace_smoke`; this
//! bench records what `Summary` bookkeeping and full `Spans` capture
//! cost relative to each other.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::spanner::SpannerPipeline;
use spannerlog_engine::TraceLevel;
use std::hint::black_box;

fn bench_trace_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("covid_trace_level");
    group.sample_size(10);
    let docs = generate_corpus(20, 42);
    group.throughput(Throughput::Elements(docs.len() as u64));
    for (name, level) in [
        ("off", TraceLevel::Off),
        ("summary", TraceLevel::Summary),
        ("spans", TraceLevel::Spans),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &docs, |b, d| {
            b.iter(|| {
                let mut pipeline = SpannerPipeline::with_tracing(level).unwrap();
                pipeline.classify_corpus(black_box(d)).unwrap().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_levels);
criterion_main!(benches);
