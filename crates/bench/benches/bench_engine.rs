//! Ablation A (DESIGN.md): naive vs semi-naive bottom-up evaluation.
//!
//! Transitive closure over chain graphs (deep recursion — semi-naive's
//! best case) and random graphs (dense closure). Expected shape:
//! semi-naive at least matches naive everywhere and wins increasingly
//! with recursion depth, because naive re-derives the full closure every
//! round while semi-naive only extends the frontier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spannerlib_bench::{chain_graph, load_edges, random_graph, TC_PROGRAM};
use spannerlog_engine::{EvalStrategy, Session};
use std::hint::black_box;

fn run_tc(edges: &[(i64, i64)], strategy: EvalStrategy) -> usize {
    let mut session = Session::with_strategy(strategy);
    load_edges(&mut session, edges);
    session.run(TC_PROGRAM).unwrap();
    session.relation("Path").unwrap().len()
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc_chain");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let edges = chain_graph(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &edges, |b, e| {
            b.iter(|| run_tc(black_box(e), EvalStrategy::Naive))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &edges, |b, e| {
            b.iter(|| run_tc(black_box(e), EvalStrategy::SemiNaive))
        });
    }
    group.finish();
}

fn bench_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc_random");
    group.sample_size(10);
    for (nodes, edges_n) in [(24usize, 48usize), (48, 96)] {
        let edges = random_graph(nodes, edges_n, 7);
        let id = format!("{nodes}n{edges_n}e");
        group.bench_with_input(BenchmarkId::new("naive", &id), &edges, |b, e| {
            b.iter(|| run_tc(black_box(e), EvalStrategy::Naive))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", &id), &edges, |b, e| {
            b.iter(|| run_tc(black_box(e), EvalStrategy::SemiNaive))
        });
    }
    group.finish();
}

fn bench_stratified_negation(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratified_negation");
    group.sample_size(10);
    let program = "
        Reach(y) <- Edge(0, y)
        Reach(z) <- Reach(y), Edge(y, z)
        Node(x) <- Edge(x, _)
        Node(y) <- Edge(_, y)
        Dead(x) <- Node(x), not Reach(x)
    ";
    for nodes in [32usize, 64] {
        let edges = random_graph(nodes, nodes * 2, 3);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &edges, |b, e| {
            b.iter(|| {
                let mut session = Session::new();
                load_edges(&mut session, black_box(e));
                session.run(program).unwrap();
                session.relation("Dead").unwrap().len()
            })
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    group.sample_size(10);
    let program = "Stats(x, count(y), min(y), max(y)) <- Edge(x, y)";
    for edges_n in [200usize, 800] {
        let edges = random_graph(40, edges_n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(edges_n), &edges, |b, e| {
            b.iter(|| {
                let mut session = Session::new();
                load_edges(&mut session, black_box(e));
                session.run(program).unwrap();
                session.relation("Stats").unwrap().len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chain,
    bench_random,
    bench_stratified_negation,
    bench_aggregation
);
criterion_main!(benches);
