//! Ablation: the cost-based query planner and the regex literal
//! prefilter, each measured on/off on the workload it targets.
//!
//! * `planner_join/*` — join ordering: textual order materializes a
//!   quadratic `A ⋈ B` intermediate, cost order starts from the 5-row
//!   relation.
//! * `planner_tc/*` — index reuse: transitive closure of a chain graph,
//!   where planner-on rebuilds the `Edge` hash index once instead of
//!   every fixpoint round.
//! * `prefilter_rgx/*` — literal prefiltering at the library level: a
//!   never-matching literal-prefixed pattern over realistic text.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spannerlib_bench::{
    chain_graph, email_document, load_edges, load_join_workload, JOIN_PROGRAM, RARE_PATTERN,
    TC_PROGRAM,
};
use spannerlib_regex::Regex;
use spannerlog_engine::Session;
use std::hint::black_box;

// Evaluation is lazy: reading `head` is what forces the fixpoint.
fn run_fresh(planner: bool, load: impl Fn(&mut Session), program: &str, head: &str) {
    let mut session = Session::builder().planner(planner).build();
    load(&mut session);
    session.run(black_box(program)).unwrap();
    black_box(session.relation(head).unwrap().len());
}

fn bench_join_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_join");
    group.sample_size(20);
    for on in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &on,
            |b, &on| b.iter(|| run_fresh(on, |s| load_join_workload(s, 1_000), JOIN_PROGRAM, "Q")),
        );
    }
    group.finish();
}

fn bench_index_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_tc");
    group.sample_size(20);
    let chain = chain_graph(128);
    for on in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &on,
            |b, &on| b.iter(|| run_fresh(on, |s| load_edges(s, &chain), TC_PROGRAM, "Path")),
        );
    }
    group.finish();
}

fn bench_prefilter(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefilter_rgx");
    let re = Regex::new(RARE_PATTERN).unwrap();
    let doc = email_document(8_000, 99);
    for on in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &on,
            |b, &on| {
                spannerlib_regex::prefilter::set_enabled(on);
                b.iter(|| re.find_iter(black_box(&doc)).count());
                spannerlib_regex::prefilter::set_enabled(true);
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_join_ordering,
    bench_index_reuse,
    bench_prefilter
);
criterion_main!(benches);
