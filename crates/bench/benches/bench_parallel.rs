//! Shard-parallel evaluation vs serial, on two workloads:
//!
//! * `parallel_covid/*` — the §4.2 clinical pipeline end to end on a
//!   scaled corpus, at 0 (pinned serial), 2, and 4 workers.
//! * `parallel_rgx/*` — a pure split-correct extraction rule over a
//!   synthetic corpus: the best case for sharding (no serial-fallback
//!   rules diluting the win).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::spanner::SpannerPipeline;
use spannerlog_engine::{Session, TraceLevel};
use std::hint::black_box;

fn bench_covid_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_covid");
    group.sample_size(10);
    let corpus = generate_corpus(60, 42);
    for workers in [0usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut pipeline =
                        SpannerPipeline::with_config(TraceLevel::Off, true, Some(workers))
                            .expect("pipeline builds");
                    black_box(
                        pipeline
                            .classify_corpus(&corpus)
                            .expect("corpus classifies"),
                    );
                })
            },
        );
    }
    group.finish();
}

fn bench_pure_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_rgx");
    group.sample_size(10);
    let corpus: Vec<(String, String)> = (0..96)
        .map(|i| {
            let body = format!("tok{} alpha beta{} gamma ", i % 11, i % 7).repeat(40);
            (format!("d{i}"), body)
        })
        .collect();
    let program = r#"Tok(d, w) <- Texts(d, t), rgx_string("(tok[0-9]+|beta[0-9]+)", t) -> (w)"#;
    for workers in [0usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut session = Session::builder().parallelism(workers).build();
                    session.import_typed("Texts", corpus.clone()).unwrap();
                    session.run(black_box(program)).unwrap();
                    black_box(session.relation("Tok").unwrap().len());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_covid_pipeline, bench_pure_extraction);
criterion_main!(benches);
