//! IE-cache cold vs warm: the ISSUE 5 acceptance bench.
//!
//! Both arms run the same repeated-document extraction workload; each
//! iteration bumps a `Tick` relation the program reads, so the fixpoint
//! reruns over an unchanged corpus. The cold arm (cache disabled)
//! re-pays every regex extraction per rerun; the warm arm replays
//! memoized IE outputs. Expected shape: warm ≪ cold (≥ 2x).
//!
//! The `cache_smoke` binary runs the same workload once and records
//! speedup and hit-rate as `BENCH_cache.json` (CI's bench-smoke step).

use criterion::{criterion_group, criterion_main, Criterion};
use spannerlib_bench::{cache_churn_session, cache_tick};
use std::hint::black_box;

const DOCS: usize = 8;
const WORDS_PER_DOC: usize = 250;
const ITERATIONS: usize = 25;

fn bench_cache_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ie_cache");
    group.sample_size(10);

    group.bench_function("cold_25_reruns", |b| {
        let mut round = 0i64;
        b.iter(|| {
            let (mut session, query) = cache_churn_session(DOCS, WORDS_PER_DOC, 0);
            query.execute(&mut session).unwrap();
            for _ in 0..ITERATIONS {
                round += 1;
                cache_tick(&mut session, round);
                black_box(query.execute(&mut session).unwrap());
            }
        })
    });

    group.bench_function("warm_25_reruns", |b| {
        let mut round = 0i64;
        b.iter(|| {
            let (mut session, query) = cache_churn_session(DOCS, WORDS_PER_DOC, 16 * 1024 * 1024);
            query.execute(&mut session).unwrap(); // memo fill
            for _ in 0..ITERATIONS {
                round += 1;
                cache_tick(&mut session, round);
                black_box(query.execute(&mut session).unwrap());
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cache_cold_vs_warm);
criterion_main!(benches);
