//! Ablation C (DESIGN.md): declarative overhead on the §4.2 case study.
//!
//! Both implementations of the COVID-19 pipeline over the same seeded
//! corpora. Expected shape: the imperative pipeline is faster (the paper
//! §6 concedes SpannerLib "does not yet put an emphasis on processing
//! performance"); the measured factor quantifies what the rewrite's
//! 2.8× smaller imperative codebase costs at runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::native::NativePipeline;
use spannerlib_covid::spanner::SpannerPipeline;
use std::hint::black_box;

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("covid_native");
    group.sample_size(10);
    let pipeline = NativePipeline::new();
    for n in [20usize, 60] {
        let docs = generate_corpus(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, d| {
            b.iter(|| pipeline.classify_corpus(black_box(d)).len())
        });
    }
    group.finish();
}

fn bench_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("covid_spannerlib");
    group.sample_size(10);
    for n in [20usize, 60] {
        let docs = generate_corpus(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, d| {
            // Pipeline construction (CSV parsing, rule loading) is inside
            // the loop on purpose: the rewrite's end-to-end cost includes
            // it, mirroring how the driver is used.
            b.iter(|| {
                let mut pipeline = SpannerPipeline::new().unwrap();
                pipeline.classify_corpus(black_box(d)).unwrap().len()
            })
        });
    }
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    c.bench_function("corpus_generate_100", |b| {
        b.iter(|| generate_corpus(black_box(100), 7).len())
    });
}

criterion_group!(
    benches,
    bench_native,
    bench_spanner,
    bench_corpus_generation
);
criterion_main!(benches);
