//! A zero-dependency work-stealing thread pool with a scoped spawn API.
//!
//! The pool exists so the engine can shard per-document work across
//! cores without pulling in an external runtime (the workspace vendors
//! every dependency; this crate uses only `std`). The design is the
//! classic fixed-worker work-stealing scheme:
//!
//! * **Fixed worker set** — `ThreadPool::new(n)` spawns `n` OS threads
//!   that live until the pool is dropped (drop joins them).
//! * **Per-worker deques with steal-half** — spawned tasks are dealt
//!   round-robin onto per-worker queues; a worker that runs dry steals
//!   roughly *half* of a victim's queue in one lock acquisition, so a
//!   skewed distribution rebalances in `O(log tasks)` steals instead of
//!   one lock round-trip per task.
//! * **Park / unpark idling** — idle workers sleep on a condvar. A
//!   generation counter guards against lost wakeups: every push bumps
//!   it, and a worker only parks if the generation is unchanged since
//!   its last (empty-handed) search for work.
//! * **Scoped spawns** — [`ThreadPool::scope`] mirrors
//!   `std::thread::scope`: tasks may borrow from the caller's stack
//!   (no `'static` bound) because `scope` does not return until every
//!   spawned task has finished.
//! * **Panic propagation** — a panicking task is caught on the worker,
//!   the first payload is kept, and `scope` re-raises it on the caller
//!   thread after all sibling tasks have drained.
//!
//! The caller of [`ThreadPool::scope`] *helps*: while waiting for its
//! tasks it steals and runs queued work instead of blocking, so a
//! `scope` over `n` tasks uses `workers + 1` lanes.
//!
//! ```
//! use spannerlib_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
//! let mut sums = vec![0u64; 4];
//! pool.scope(|s| {
//!     for (slot, chunk) in sums.iter_mut().zip(data.chunks(2)) {
//!         s.spawn(move || *slot = chunk.iter().sum());
//!     }
//! });
//! assert_eq!(sums.iter().sum::<u64>(), 36);
//! ```

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A queued unit of work. Lifetime-erased: see the safety comment in
/// [`Scope::spawn`].
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, shrugging off poisoning (a panicking task has already
/// recorded its payload; the queues themselves stay structurally valid).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Park/unpark coordination. `generation` increments on every push so a
/// worker can detect "work arrived between my empty search and my park";
/// `parked` counts waiting workers so pushes skip the wake syscall when
/// every worker is already busy.
#[derive(Default)]
struct SleepState {
    generation: u64,
    shutdown: bool,
    parked: usize,
}

struct Shared {
    /// One FIFO deque per worker. Spawns are dealt round-robin; owners
    /// pop from the front, thieves split off the back half.
    queues: Vec<Mutex<VecDeque<Task>>>,
    sleep: Mutex<SleepState>,
    wakeup: Condvar,
    /// Round-robin cursor for spawn placement.
    next: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
}

impl Shared {
    fn push(&self, task: Task) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        lock(&self.queues[slot]).push_back(task);
        let mut s = lock(&self.sleep);
        s.generation = s.generation.wrapping_add(1);
        let any_parked = s.parked > 0;
        drop(s);
        if any_parked {
            self.wakeup.notify_one();
        }
    }

    /// Pops local work for worker `home`, else steals. A worker thief
    /// takes half the victim's queue (keeping the rest for later); a
    /// homeless thief (the helping `scope` caller) takes a single task.
    fn find_task(&self, home: Option<usize>) -> Option<Task> {
        if let Some(i) = home {
            if let Some(task) = lock(&self.queues[i]).pop_front() {
                return Some(task);
            }
        }
        let n = self.queues.len();
        let start = home.map_or(0, |i| i + 1);
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == home {
                continue;
            }
            let mut q = lock(&self.queues[victim]);
            let len = q.len();
            if len == 0 {
                continue;
            }
            let take = if home.is_some() { len.div_ceil(2) } else { 1 };
            let mut grabbed = q.split_off(len - take);
            drop(q);
            self.stolen
                .fetch_add(grabbed.len() as u64, Ordering::Relaxed);
            let first = grabbed.pop_front().expect("take >= 1");
            if !grabbed.is_empty() {
                if let Some(i) = home {
                    lock(&self.queues[i]).append(&mut grabbed);
                    // The transferred surplus is stealable work again.
                    let mut s = lock(&self.sleep);
                    s.generation = s.generation.wrapping_add(1);
                    let any_parked = s.parked > 0;
                    drop(s);
                    if any_parked {
                        self.wakeup.notify_one();
                    }
                }
            }
            return Some(first);
        }
        None
    }

    fn run(&self, task: Task) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        task();
    }

    fn worker_loop(&self, index: usize) {
        loop {
            // Snapshot the generation *before* searching: a push that
            // races with the search bumps it, and the re-check below
            // turns the would-be park into another search.
            let seen = lock(&self.sleep).generation;
            if let Some(task) = self.find_task(Some(index)) {
                self.run(task);
                continue;
            }
            let mut s = lock(&self.sleep);
            if s.shutdown {
                return;
            }
            if s.generation != seen {
                continue;
            }
            s.parked += 1;
            let mut guard = self.wakeup.wait(s).unwrap_or_else(|e| e.into_inner());
            guard.parked -= 1;
            drop(guard);
        }
    }
}

/// Counters accumulated over the pool's lifetime (relaxed atomics;
/// exact once the pool is idle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks run to completion (by workers or by helping callers).
    pub executed: u64,
    /// Tasks that migrated off the queue they were dealt onto.
    pub stolen: u64,
}

/// A fixed-size work-stealing thread pool. See the [module docs](self)
/// for the design.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool of `workers` OS threads (clamped to at least 1).
    pub fn new(workers: usize) -> ThreadPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(SleepState::default()),
            wakeup: Condvar::new(),
            next: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("spannerlib-par-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Lifetime counters (tasks executed, tasks stolen).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing from the
    /// caller's environment can be spawned. Returns only after every
    /// spawned task has finished; the caller helps run queued tasks
    /// while it waits. If `f` or any task panicked, the (first) panic
    /// is re-raised here — after all sibling tasks have drained, so
    /// borrowed data is never observed by a still-running task.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let scope = Scope {
            shared: &self.shared,
            state: state.clone(),
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help until the scope's tasks are all done. `pending` counts
        // queued *and* running tasks, so once it hits zero no task can
        // re-raise it (only `f` — already returned — and running tasks
        // spawn).
        while state.pending.load(Ordering::SeqCst) > 0 {
            if let Some(task) = self.shared.find_task(None) {
                self.shared.run(task);
                continue;
            }
            let guard = lock(&state.done);
            if state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            let guard = state.done_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
            drop(guard);
        }
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = lock(&state.panic).take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut s = lock(&self.shared.sleep);
            s.shutdown = true;
        }
        self.wakeup_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl ThreadPool {
    fn wakeup_all(&self) {
        self.shared.wakeup.notify_all();
    }
}

struct ScopeState {
    /// Tasks spawned but not yet finished (queued or running).
    pending: AtomicUsize,
    /// First panic payload raised by a task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
/// Mirrors `std::thread::Scope`: `'scope` is the lifetime of the scope
/// itself, `'env` the (longer) lifetime of borrowed environment data.
pub struct Scope<'scope, 'env: 'scope> {
    shared: &'scope Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariance over both lifetimes, exactly like `std::thread::Scope`.
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Queues `f` on the pool. The task may borrow anything that
    /// outlives the scope; it runs on a worker thread (or on the
    /// caller, which helps while waiting).
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let state = self.state.clone();
        state.pending.fetch_add(1, Ordering::SeqCst);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = lock(&state.panic);
                slot.get_or_insert(payload);
                drop(slot);
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last task out: take the done lock so the notify cannot
                // slip between the caller's pending re-check and its wait.
                let _guard = lock(&state.done);
                state.done_cv.notify_all();
            }
        });
        // SAFETY: the task is erased to 'static so it can sit on the
        // queue, but every borrow it captures outlives 'scope, and
        // `ThreadPool::scope` does not return (or unwind) until
        // `pending` reaches zero — i.e. until this closure has run to
        // completion and dropped. This is the same argument that makes
        // `std::thread::scope` sound.
        let job: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.push(job);
    }
}

// The pool is handed by reference to worker shards; these bounds are
// what the engine's parallel evaluation relies on.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ThreadPool>();
    assert_send_sync::<PoolStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Barrier;

    #[test]
    fn executes_every_task_once() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(pool.stats().executed >= 100);
    }

    #[test]
    fn tasks_borrow_the_callers_stack() {
        let pool = ThreadPool::new(3);
        let words = ["alpha", "beta", "gamma", "delta"];
        let mut lens = vec![0usize; words.len()];
        pool.scope(|s| {
            for (slot, word) in lens.iter_mut().zip(words.iter()) {
                s.spawn(move || *slot = word.len());
            }
        });
        assert_eq!(lens, vec![5, 4, 5, 5]);
    }

    #[test]
    fn idle_workers_steal_queued_tasks() {
        let pool = ThreadPool::new(2);
        // Round-robin deals tasks 1 and 3 onto the same queue; task 1
        // blocks its worker on the barrier, so task 3 (the barrier's
        // second party) can only run via a steal (worker 2 or the
        // helping caller).
        let barrier = Barrier::new(2);
        pool.scope(|s| {
            s.spawn(|| {
                barrier.wait();
            });
            s.spawn(|| {});
            s.spawn(|| {
                barrier.wait();
            });
        });
        assert!(pool.stats().stolen >= 1, "stats: {:?}", pool.stats());
    }

    #[test]
    fn panics_propagate_after_siblings_finish() {
        let pool = ThreadPool::new(2);
        let finished = AtomicU32::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..16 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = outcome.expect_err("scope re-raises the task panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom");
        // Every sibling ran to completion before the panic surfaced.
        assert_eq!(finished.load(Ordering::Relaxed), 16);
        // The pool survives a panicked scope.
        let ok = AtomicU32::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_spawns_from_running_tasks_complete() {
        let pool = ThreadPool::new(2);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.workers(), 1);
        let mut hit = false;
        pool.scope(|s| s.spawn(|| hit = true));
        assert!(hit);
    }

    #[test]
    fn scope_returns_the_closure_value() {
        let pool = ThreadPool::new(2);
        let n = pool.scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(n, 42);
    }
}
