//! Few-shot prompting from recorded feedback — the second extension of
//! the §5 "Extending SpannerLib Code" scenario: "user feedback over
//! previous executions of this task" becomes examples in the prompt.

use crate::tfidf::TfIdfIndex;

/// One recorded interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// The input the user gave.
    pub input: String,
    /// The output the user approved (the "feedback").
    pub output: String,
}

/// A store of approved examples with similarity-based selection.
#[derive(Debug, Clone, Default)]
pub struct FewShotStore {
    examples: Vec<Example>,
}

impl FewShotStore {
    /// An empty store.
    pub fn new() -> Self {
        FewShotStore::default()
    }

    /// Records an approved (input, output) pair.
    pub fn record(&mut self, input: &str, output: &str) {
        self.examples.push(Example {
            input: input.to_string(),
            output: output.to_string(),
        });
    }

    /// Number of recorded examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The `k` most similar examples to `input` (TF-IDF cosine over the
    /// recorded inputs), in rank order.
    pub fn select(&self, input: &str, k: usize) -> Vec<&Example> {
        let mut index = TfIdfIndex::new();
        for (i, e) in self.examples.iter().enumerate() {
            index.add(&i.to_string(), &e.input);
        }
        index.finalize();
        index
            .search(input, k)
            .into_iter()
            .map(|(id, _)| &self.examples[id.parse::<usize>().expect("ids are indices")])
            .collect()
    }

    /// Builds a few-shot prompt: `Examples:` blocks then the new input —
    /// the shape [`crate::TemplateLlm`] continues stylistically.
    pub fn prompt(&self, input: &str, k: usize) -> String {
        let mut prompt = String::from("Examples:");
        for e in self.select(input, k) {
            prompt.push_str(&format!("\nInput: {}\nOutput: {}", e.input, e.output));
        }
        prompt.push_str(&format!("\nInput: {input}\nOutput:"));
        prompt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LlmModel, TemplateLlm};

    fn store() -> FewShotStore {
        let mut s = FewShotStore::new();
        s.record("summarize the patient note", "SUMMARY OF NOTE");
        s.record("summarize the lab report", "SUMMARY OF LABS");
        s.record("translate to french", "bonjour");
        s
    }

    #[test]
    fn selects_similar_examples() {
        let s = store();
        let selected = s.select("summarize the discharge note", 2);
        assert_eq!(selected.len(), 2);
        assert!(selected.iter().all(|e| e.input.contains("summarize")));
    }

    #[test]
    fn prompt_contains_examples_and_input() {
        let p = store().prompt("summarize the x-ray", 1);
        assert!(p.starts_with("Examples:"));
        assert!(p.contains("Input: summarize the"));
        assert!(p.ends_with("Input: summarize the x-ray\nOutput:"));
    }

    #[test]
    fn end_to_end_style_following() {
        // The two summarize examples answer in uppercase; the model
        // follows suit.
        let p = store().prompt("summarize the new admission", 2);
        let answer = TemplateLlm::new().complete(&p);
        assert_eq!(answer, "SUMMARIZE THE NEW ADMISSION");
    }

    #[test]
    fn empty_store_still_prompts() {
        let p = FewShotStore::new().prompt("anything", 3);
        assert!(p.contains("Input: anything"));
    }

    #[test]
    fn record_grows_store() {
        let mut s = FewShotStore::new();
        assert!(s.is_empty());
        s.record("a", "b");
        assert_eq!(s.len(), 1);
    }
}
