//! The LLM trait and the deterministic template model.

/// A completion model: the `str → str` oracle the IE function wraps.
pub trait LlmModel: Send + Sync {
    /// Produces a completion for `prompt`.
    fn complete(&self, prompt: &str) -> String;
}

/// A deterministic "LLM": recognizes the structured prompt shapes built
/// by the demo scenarios and answers from templates.
///
/// Recognized shapes (in priority order):
///
/// 1. `Write documentation for the function:` followed by a code block —
///    answers with a docstring synthesized from the function's name,
///    parameters, and callers listed under `Callers:`.
/// 2. `Context:` passages followed by `Question: …` — answers by
///    extracting the context sentence sharing the most words with the
///    question (an extractive QA heuristic).
/// 3. `Examples:` few-shot blocks followed by a final `Input:` — answers
///    by echoing the style of the last example's `Output:`.
/// 4. Anything else — a stable fallback echo, so pipelines never get an
///    empty string.
#[derive(Debug, Default, Clone)]
pub struct TemplateLlm;

impl TemplateLlm {
    /// Creates the model.
    pub fn new() -> Self {
        TemplateLlm
    }

    fn doc_task(&self, prompt: &str) -> Option<String> {
        let marker = "Write documentation for the function:";
        let idx = prompt.find(marker)?;
        let rest = &prompt[idx + marker.len()..];
        // Function signature: first "fn name(params)" in the code block.
        let fn_idx = rest.find("fn ")?;
        let after = &rest[fn_idx + 3..];
        let open = after.find('(')?;
        let name = after[..open].trim().to_string();
        let close = after.find(')')?;
        let params: Vec<String> = after[open + 1..close]
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect();
        let words = split_ident(&name);
        let mut doc = format!("/// {}.", sentence_case(&words.join(" ")));
        if !params.is_empty() {
            doc.push_str(&format!("\n///\n/// Arguments: {}.", params.join(", ")));
        }
        if let Some(c_idx) = prompt.find("Callers:") {
            let callers: Vec<&str> = prompt[c_idx + 8..]
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with("Write"))
                .take(4)
                .collect();
            if !callers.is_empty() {
                doc.push_str(&format!("\n///\n/// Called by: {}.", callers.join(", ")));
            }
        }
        Some(doc)
    }

    fn qa_task(&self, prompt: &str) -> Option<String> {
        let q_idx = prompt.rfind("Question:")?;
        let question = prompt[q_idx + 9..].trim();
        let c_idx = prompt.find("Context:")?;
        let context = &prompt[c_idx + 8..q_idx];
        let q_words: Vec<String> = words_of(question);
        let mut best: Option<(usize, &str)> = None;
        for sentence in context
            .split(['.', '\n'])
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            let overlap = words_of(sentence)
                .iter()
                .filter(|w| q_words.contains(w))
                .count();
            match best {
                Some((score, _)) if score >= overlap => {}
                _ => best = Some((overlap, sentence)),
            }
        }
        best.map(|(_, s)| format!("{s}."))
    }

    fn fewshot_task(&self, prompt: &str) -> Option<String> {
        prompt.find("Examples:")?;
        let last_input = prompt.rfind("Input:")?;
        let input = prompt[last_input + 6..]
            .trim()
            .trim_end_matches("Output:")
            .trim();
        // Echo in the dominant example style: uppercase if the example
        // outputs are uppercase.
        let outputs: Vec<&str> = prompt
            .match_indices("Output:")
            .map(|(i, _)| prompt[i + 7..].lines().next().unwrap_or("").trim())
            .filter(|s| !s.is_empty())
            .collect();
        let shout = !outputs.is_empty()
            && outputs.iter().all(|o| {
                o.chars()
                    .filter(|c| c.is_alphabetic())
                    .all(|c| c.is_uppercase())
            });
        Some(if shout {
            input.to_uppercase()
        } else {
            input.to_string()
        })
    }
}

impl LlmModel for TemplateLlm {
    fn complete(&self, prompt: &str) -> String {
        if let Some(answer) = self.doc_task(prompt) {
            return answer;
        }
        if let Some(answer) = self.qa_task(prompt) {
            return answer;
        }
        if let Some(answer) = self.fewshot_task(prompt) {
            return answer;
        }
        let head: String = prompt.chars().take(48).collect();
        format!("[completion for: {head}]")
    }
}

/// Splits an identifier into lowercase words (`snake_case` and
/// `camelCase` both supported).
fn split_ident(ident: &str) -> Vec<String> {
    let mut words = Vec::new();
    for chunk in ident.split('_') {
        let mut current = String::new();
        for c in chunk.chars() {
            if c.is_uppercase() && !current.is_empty() {
                words.push(current.to_lowercase());
                current = String::new();
            }
            current.push(c);
        }
        if !current.is_empty() {
            words.push(current.to_lowercase());
        }
    }
    words
}

fn sentence_case(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

fn words_of(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() > 2)
        .map(|w| w.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documentation_prompt_produces_docstring() {
        let llm = TemplateLlm::new();
        let prompt = "Write documentation for the function:\n\
                      fn compute_total_risk(score, factor) { return score * factor; }\n\
                      Callers:\n  assess_patient\n  triage\n";
        let out = llm.complete(prompt);
        assert!(out.starts_with("/// Compute total risk."), "{out}");
        assert!(out.contains("score, factor"), "{out}");
        assert!(out.contains("assess_patient"), "{out}");
    }

    #[test]
    fn qa_prompt_extracts_best_sentence() {
        let llm = TemplateLlm::new();
        let prompt = "Context: The capital of France is Paris. \
                      Bananas are yellow.\nQuestion: What is the capital of France";
        assert_eq!(llm.complete(prompt), "The capital of France is Paris.");
    }

    #[test]
    fn fewshot_prompt_follows_style() {
        let llm = TemplateLlm::new();
        let prompt =
            "Examples:\nInput: hi\nOutput: HI\nInput: bye\nOutput: BYE\nInput: thanks\nOutput:";
        assert_eq!(llm.complete(prompt), "THANKS");
    }

    #[test]
    fn fallback_is_stable_and_nonempty() {
        let llm = TemplateLlm::new();
        let a = llm.complete("unstructured");
        let b = llm.complete("unstructured");
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn ident_splitting() {
        assert_eq!(split_ident("compute_total"), vec!["compute", "total"]);
        assert_eq!(split_ident("computeTotal"), vec!["compute", "total"]);
        assert_eq!(split_ident("x"), vec!["x"]);
    }

    #[test]
    fn determinism_across_instances() {
        let prompt = "Context: A. B.\nQuestion: A";
        assert_eq!(
            TemplateLlm::new().complete(prompt),
            TemplateLlm::new().complete(prompt)
        );
    }
}
