//! Structured prompt assembly for the code-documentation task (§4.1).

/// Builds the documentation prompt from the pieces the Spannerlog rules
/// extract: the function's code and the code of its callers.
#[derive(Debug, Clone, Default)]
pub struct PromptBuilder {
    function_code: String,
    callers: Vec<String>,
    extra_context: Vec<String>,
}

impl PromptBuilder {
    /// Starts a prompt for documenting `function_code`.
    pub fn for_function(function_code: &str) -> Self {
        PromptBuilder {
            function_code: function_code.to_string(),
            callers: Vec::new(),
            extra_context: Vec::new(),
        }
    }

    /// Adds a caller's name (the paper's `mentions` component).
    pub fn with_caller(mut self, caller: &str) -> Self {
        self.callers.push(caller.to_string());
        self
    }

    /// Adds retrieved context (the RAG extension).
    pub fn with_context(mut self, passage: &str) -> Self {
        self.extra_context.push(passage.to_string());
        self
    }

    /// Renders the final prompt in the shape
    /// [`crate::TemplateLlm`] recognizes.
    pub fn build(&self) -> String {
        let mut p = String::new();
        if !self.extra_context.is_empty() {
            p.push_str("Background:\n");
            for c in &self.extra_context {
                p.push_str(&format!("  {c}\n"));
            }
        }
        p.push_str("Write documentation for the function:\n");
        p.push_str(&self.function_code);
        if !self.callers.is_empty() {
            p.push_str("\nCallers:\n");
            for c in &self.callers {
                p.push_str(&format!("  {c}\n"));
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LlmModel, TemplateLlm};

    #[test]
    fn prompt_layout() {
        let p = PromptBuilder::for_function("fn add(a, b) { return a + b; }")
            .with_caller("compute_sum")
            .with_context("arithmetic helpers live in math.ml")
            .build();
        assert!(p.starts_with("Background:"));
        assert!(p.contains("Write documentation for the function:"));
        assert!(p.contains("Callers:\n  compute_sum"));
    }

    #[test]
    fn template_llm_documents_through_builder() {
        let p = PromptBuilder::for_function("fn parse_note(text) { ... }")
            .with_caller("classify_document")
            .build();
        let out = TemplateLlm::new().complete(&p);
        assert!(out.starts_with("/// Parse note."), "{out}");
        assert!(out.contains("classify_document"), "{out}");
    }

    #[test]
    fn no_callers_no_callers_section() {
        let p = PromptBuilder::for_function("fn lone() {}").build();
        assert!(!p.contains("Callers:"));
    }
}
