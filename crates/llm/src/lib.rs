//! # spannerlib-llm
//!
//! A deterministic LLM substrate — the stand-in for the chat-model API in
//! the paper's §4.1 code-documentation task and the §5 "Extending
//! SpannerLib Code" scenario (RAG + few-shot prompting).
//!
//! The paper treats the LLM as an opaque IE function `LLM(prompt) ↦
//! (answer)` wrapped in "a very thin wrapper around established
//! libraries". Reproducing that code path does not require a neural
//! model — it requires a `str → str` oracle with believable behaviour.
//! [`TemplateLlm`] provides one: it parses the structured prompts the
//! examples build (code context, questions, retrieved passages, few-shot
//! examples) and produces deterministic completions, so tests can assert
//! exact outputs.
//!
//! The retrieval half of the scenario is real, built from scratch:
//! [`tfidf::TfIdfIndex`] implements TF-IDF vectors with cosine
//! similarity, [`rag::RagRetriever`] composes it into a
//! retrieve-then-prompt step, and [`fewshot::FewShotStore`] records
//! past (input, feedback) pairs and selects the most similar ones for
//! prompt augmentation.

pub mod fewshot;
pub mod model;
pub mod prompt;
pub mod rag;
pub mod tfidf;

pub use fewshot::FewShotStore;
pub use model::{LlmModel, TemplateLlm};
pub use prompt::PromptBuilder;
pub use rag::RagRetriever;
pub use tfidf::TfIdfIndex;
