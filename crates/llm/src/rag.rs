//! Retrieval-Augmented Generation: retrieve top-k passages, prepend them
//! as context (the first extension of the paper's §5 "Extending
//! SpannerLib Code" scenario).

use crate::tfidf::TfIdfIndex;
use rustc_hash::FxHashMap;

/// A retriever over a passage store.
#[derive(Debug, Clone, Default)]
pub struct RagRetriever {
    index: TfIdfIndex,
    passages: FxHashMap<String, String>,
    k: usize,
}

impl RagRetriever {
    /// Builds a retriever from `(id, passage)` pairs, retrieving `k`
    /// passages per query.
    pub fn new(passages: impl IntoIterator<Item = (String, String)>, k: usize) -> Self {
        let mut index = TfIdfIndex::new();
        let mut store = FxHashMap::default();
        for (id, text) in passages {
            index.add(&id, &text);
            store.insert(id, text);
        }
        index.finalize();
        RagRetriever {
            index,
            passages: store,
            k,
        }
    }

    /// Number of stored passages.
    pub fn len(&self) -> usize {
        self.passages.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.passages.is_empty()
    }

    /// The top-k passages for `query`, as `(id, text)` in rank order.
    pub fn retrieve(&self, query: &str) -> Vec<(String, String)> {
        self.index
            .search(query, self.k)
            .into_iter()
            .map(|(id, _)| {
                let text = self.passages[&id].clone();
                (id, text)
            })
            .collect()
    }

    /// Builds the augmented prompt: retrieved passages under `Context:`,
    /// then the question — the shape [`crate::TemplateLlm`] answers
    /// extractively.
    pub fn augment(&self, question: &str) -> String {
        let hits = self.retrieve(question);
        let mut prompt = String::from("Context:");
        if hits.is_empty() {
            prompt.push_str(" (no relevant passages)");
        }
        for (id, text) in &hits {
            prompt.push_str(&format!("\n[{id}] {text}"));
        }
        prompt.push_str(&format!("\nQuestion: {question}"));
        prompt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LlmModel, TemplateLlm};

    fn retriever() -> RagRetriever {
        RagRetriever::new(
            [
                (
                    "doc1".to_string(),
                    "The engine evaluates rules bottom-up until fixpoint".to_string(),
                ),
                (
                    "doc2".to_string(),
                    "Spans are triples of document, start, and end".to_string(),
                ),
                (
                    "doc3".to_string(),
                    "Bananas are yellow and sweet".to_string(),
                ),
            ],
            2,
        )
    }

    #[test]
    fn retrieves_relevant_passages() {
        let hits = retriever().retrieve("how are rules evaluated");
        assert_eq!(hits[0].0, "doc1");
    }

    #[test]
    fn augmented_prompt_contains_passages_and_question() {
        let prompt = retriever().augment("what are spans");
        assert!(prompt.contains("Context:"));
        assert!(prompt.contains("triples of document"));
        assert!(prompt.ends_with("Question: what are spans"));
    }

    #[test]
    fn end_to_end_with_template_llm() {
        // RAG + TemplateLlm answers from the retrieved context.
        let prompt = retriever().augment("what are spans made of");
        let answer = TemplateLlm::new().complete(&prompt);
        assert!(answer.contains("start"), "{answer}");
    }

    #[test]
    fn no_hits_yields_explicit_empty_context() {
        let prompt = retriever().augment("xylophone");
        assert!(prompt.contains("(no relevant passages)"));
    }

    #[test]
    fn k_bounds_retrieval() {
        let hits = retriever().retrieve("the and are");
        assert!(hits.len() <= 2);
    }
}
