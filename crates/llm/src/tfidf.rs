//! TF-IDF vectors with cosine similarity, from scratch.
//!
//! The retrieval engine behind the RAG extension scenario. Documents are
//! tokenized to lowercase word stems (cheap suffix stripping), weighted
//! `tf · idf` with `idf = ln(1 + N / df)`, L2-normalized, and compared by
//! dot product (= cosine, post-normalization).

use rustc_hash::FxHashMap;

/// A TF-IDF index over a fixed document collection.
#[derive(Debug, Clone, Default)]
pub struct TfIdfIndex {
    /// Document ids as supplied at insertion.
    ids: Vec<String>,
    /// Sparse normalized vectors, term-id keyed.
    vectors: Vec<FxHashMap<u32, f64>>,
    /// Vocabulary: term → term id.
    vocab: FxHashMap<String, u32>,
    /// Document frequency per term id.
    df: Vec<u32>,
    /// Raw term counts per document (pre-finalize staging).
    staged: Vec<FxHashMap<u32, u32>>,
    finalized: bool,
}

impl TfIdfIndex {
    /// An empty index.
    pub fn new() -> Self {
        TfIdfIndex::default()
    }

    /// Adds a document. Call [`TfIdfIndex::finalize`] after the last add.
    pub fn add(&mut self, id: &str, text: &str) {
        assert!(
            !self.finalized,
            "cannot add documents after finalize(); build a new index"
        );
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        for term in tokenize_terms(text) {
            let next_id = self.vocab.len() as u32;
            let tid = *self.vocab.entry(term).or_insert(next_id);
            if tid as usize >= self.df.len() {
                self.df.push(0);
            }
            let c = counts.entry(tid).or_insert(0);
            if *c == 0 {
                self.df[tid as usize] += 1;
            }
            *c += 1;
        }
        self.ids.push(id.to_string());
        self.staged.push(counts);
    }

    /// Computes idf weights and normalized vectors.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        let n = self.staged.len() as f64;
        for counts in &self.staged {
            let mut vec: FxHashMap<u32, f64> = FxHashMap::default();
            for (&tid, &c) in counts {
                let idf = (1.0 + n / self.df[tid as usize] as f64).ln();
                vec.insert(tid, c as f64 * idf);
            }
            let norm = vec.values().map(|w| w * w).sum::<f64>().sqrt();
            if norm > 0.0 {
                for w in vec.values_mut() {
                    *w /= norm;
                }
            }
            self.vectors.push(vec);
        }
        self.staged.clear();
        self.finalized = true;
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Top-`k` documents by cosine similarity to `query`, as
    /// `(id, score)` with scores descending (ties broken by id for
    /// determinism). Zero-similarity documents are omitted.
    pub fn search(&self, query: &str, k: usize) -> Vec<(String, f64)> {
        assert!(self.finalized, "call finalize() before search()");
        // Query vector (idf-weighted, normalized).
        let mut q: FxHashMap<u32, f64> = FxHashMap::default();
        let n = self.ids.len() as f64;
        for term in tokenize_terms(query) {
            if let Some(&tid) = self.vocab.get(&term) {
                let idf = (1.0 + n / self.df[tid as usize] as f64).ln();
                *q.entry(tid).or_insert(0.0) += idf;
            }
        }
        let norm = q.values().map(|w| w * w).sum::<f64>().sqrt();
        if norm == 0.0 {
            return Vec::new();
        }
        for w in q.values_mut() {
            *w /= norm;
        }

        let mut scored: Vec<(String, f64)> = self
            .vectors
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                let score: f64 = q
                    .iter()
                    .filter_map(|(tid, qw)| v.get(tid).map(|dw| qw * dw))
                    .sum();
                (score > 0.0).then(|| (self.ids[i].clone(), score))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

/// Tokenizes into lowercase terms with light suffix stripping (plural
/// and `-ing`/`-ed`), dropping one- and two-letter tokens.
fn tokenize_terms(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() > 2)
        .map(|w| {
            let w = w.to_lowercase();
            for suffix in ["ing", "ed", "es", "s"] {
                if w.len() > suffix.len() + 2 {
                    if let Some(stem) = w.strip_suffix(suffix) {
                        return stem.to_string();
                    }
                }
            }
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> TfIdfIndex {
        let mut idx = TfIdfIndex::new();
        idx.add("paris", "The capital of France is Paris, a large city");
        idx.add("rome", "The capital of Italy is Rome, an ancient city");
        idx.add("fruit", "Bananas and apples are common fruits");
        idx.finalize();
        idx
    }

    #[test]
    fn retrieves_most_relevant_first() {
        let hits = index().search("capital of France", 2);
        assert_eq!(hits[0].0, "paris");
        assert!(hits[0].1 > hits.get(1).map(|h| h.1).unwrap_or(0.0));
    }

    #[test]
    fn zero_overlap_returns_nothing() {
        assert!(index().search("quantum chromodynamics", 3).is_empty());
    }

    #[test]
    fn k_truncates() {
        assert_eq!(index().search("capital city", 1).len(), 1);
    }

    #[test]
    fn rare_terms_outweigh_common() {
        // "capital" appears in two docs, "banana" in one: a query with
        // both should rank the banana doc via idf despite one term each.
        let hits = index().search("banana capital", 3);
        assert_eq!(hits[0].0, "fruit");
    }

    #[test]
    fn suffix_stripping_unifies_forms() {
        let mut idx = TfIdfIndex::new();
        idx.add("a", "testing tested tests");
        idx.finalize();
        let hits = idx.search("test", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut idx = TfIdfIndex::new();
        idx.add("b", "same words here");
        idx.add("a", "same words here");
        idx.finalize();
        let hits = idx.search("same words", 2);
        assert_eq!(hits[0].0, "a");
    }

    #[test]
    #[should_panic(expected = "finalize")]
    fn search_before_finalize_panics() {
        let mut idx = TfIdfIndex::new();
        idx.add("a", "text");
        idx.search("text", 1);
    }

    #[test]
    fn empty_index_is_searchable_after_finalize() {
        let mut idx = TfIdfIndex::new();
        idx.finalize();
        assert!(idx.search("anything", 3).is_empty());
        assert!(idx.is_empty());
    }
}
