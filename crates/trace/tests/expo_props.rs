//! Property tests closing the loop between `encode_prometheus` and
//! `check_exposition`: arbitrary instrument names and label values must
//! survive sanitization/escaping into a body the checker accepts, and
//! histogram expansion must always be a valid cumulative distribution.

use proptest::prelude::*;
use spannerlib_trace::{check_exposition, encode_prometheus, MetricsRegistry};

/// Strings drawn from a hostile palette: exposition metacharacters,
/// escape triggers, unicode, and grammar-legal identifier characters.
fn wild_string() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &[
        'a', 'Z', '_', ':', '.', '-', '0', '7', '"', '\\', '\n', '{', '}', '=', ',', ' ', 'é', 'λ',
        '\t',
    ];
    prop::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the names and label pairs are, the encoded body passes
    /// the checker and carries every family.
    #[test]
    fn arbitrary_names_and_labels_encode_validly(
        counter_name in wild_string(),
        histogram_name in wild_string(),
        pairs in prop::collection::vec((wild_string(), wild_string()), 0..4),
        samples in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let reg = MetricsRegistry::new();
        let borrowed: Vec<(&str, &str)> =
            pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        reg.counter_with(&counter_name, &borrowed).add(3);
        reg.gauge_with("wild_gauge", &borrowed).set(-9);
        let h = reg.histogram_with(&histogram_name, &borrowed);
        for &s in &samples {
            h.record(s);
        }

        let body = encode_prometheus(&reg.snapshot());
        let stats = check_exposition(&body)
            .unwrap_or_else(|e| panic!("{e}\n--- body ---\n{body}"));
        // Counter + gauge + histogram (>= one finite bucket, +Inf,
        // _sum, _count even when empty).
        prop_assert!(stats.samples >= 6, "{body}");
        prop_assert_eq!(stats.families, 3);
    }

    /// The expanded histogram is a genuine cumulative distribution:
    /// finite-bucket values never decrease, `+Inf` dominates them all,
    /// and `_count` equals the `+Inf` bucket equals the sample count.
    #[test]
    fn histogram_buckets_are_monotone_cumulative(
        samples in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns");
        for &s in &samples {
            h.record(s);
        }

        let body = encode_prometheus(&reg.snapshot());
        prop_assert!(check_exposition(&body).is_ok(), "{body}");

        let mut finite: Vec<(u64, u64)> = Vec::new(); // (le, cumulative)
        let mut inf = None;
        let mut count = None;
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("lat_ns_bucket{le=\"") {
                let (le, value) = rest
                    .split_once("\"} ")
                    .unwrap_or_else(|| panic!("bad bucket line {line:?}"));
                let value: u64 = value.parse().unwrap();
                if le == "+Inf" {
                    inf = Some(value);
                } else {
                    finite.push((le.parse().unwrap(), value));
                }
            } else if let Some(rest) = line.strip_prefix("lat_ns_count ") {
                count = Some(rest.parse::<u64>().unwrap());
            }
        }

        prop_assert!(
            finite.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "buckets not cumulative: {finite:?}"
        );
        let inf = inf.expect("+Inf bucket always present");
        if let Some(&(_, last)) = finite.last() {
            prop_assert!(last <= inf);
        }
        prop_assert_eq!(inf, samples.len() as u64, "{}", body);
        prop_assert_eq!(count, Some(samples.len() as u64));
    }
}
