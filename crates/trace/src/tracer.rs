//! The `Tracer` sink trait and its two stock implementations: the
//! zero-cost [`NullTracer`] and the in-memory [`RingTracer`] flight
//! recorder with an attached metrics registry.

use crate::metrics::MetricsRegistry;
use crate::profile::EvalProfile;
use crate::ring::SpanRing;
use crate::span::{SpanEvent, TraceLevel};
use std::sync::{Mutex, MutexGuard};

/// A sink for evaluation telemetry, shared across runs (and threads).
///
/// The engine collects each run into an `EvalProfile` and then feeds
/// the tracer: every recorded span via [`Tracer::record_span`], then
/// the profile via [`Tracer::record_profile`]. Implementations decide
/// what to keep — a ring buffer, a metrics backend, a log file.
///
/// [`Tracer::level`] is a *request*: a session traces each run at the
/// maximum of its own configured level and the tracer's, so attaching
/// a `Spans`-level tracer to an otherwise untraced session turns
/// recording on.
pub trait Tracer: Send + Sync {
    /// The minimum level this sink wants runs recorded at.
    fn level(&self) -> TraceLevel;

    /// Receives one closed span event (only for runs at
    /// [`TraceLevel::Spans`]).
    fn record_span(&self, event: &SpanEvent) {
        let _ = event;
    }

    /// Receives the finished profile of one evaluation run.
    fn record_profile(&self, profile: &EvalProfile) {
        let _ = profile;
    }
}

/// A tracer that requests nothing and discards everything.
///
/// ```
/// use spannerlib_trace::{NullTracer, Tracer, TraceLevel};
/// assert_eq!(NullTracer.level(), TraceLevel::Off);
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn level(&self) -> TraceLevel {
        TraceLevel::Off
    }
}

/// Std-mutex lock that shrugs off poisoning (telemetry must never
/// propagate a panic).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An in-memory tracer: keeps the most recent spans across *all* runs
/// in a byte-bounded [`SpanRing`], and aggregates run profiles into a
/// [`MetricsRegistry`] (counters for evals / rounds / tuples,
/// histograms for evaluation and per-IE-function latency).
///
/// ```
/// use spannerlib_trace::{EvalProfile, RingTracer, TraceLevel, Tracer};
/// let tracer = RingTracer::new(TraceLevel::Summary, 64 * 1024);
/// tracer.record_profile(&EvalProfile { rounds: 4, ..EvalProfile::default() });
/// assert_eq!(tracer.metrics().counter("evals").get(), 1);
/// assert_eq!(tracer.metrics().counter("rounds").get(), 4);
/// ```
#[derive(Debug)]
pub struct RingTracer {
    level: TraceLevel,
    ring: Mutex<SpanRing>,
    metrics: MetricsRegistry,
}

impl RingTracer {
    /// A tracer requesting `level`, keeping at most `span_budget_bytes`
    /// of span events.
    pub fn new(level: TraceLevel, span_budget_bytes: usize) -> RingTracer {
        RingTracer {
            level,
            ring: Mutex::new(SpanRing::new(span_budget_bytes)),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The cross-run metrics registry fed by [`Tracer::record_profile`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A copy of the resident span events, oldest first.
    pub fn spans(&self) -> Vec<SpanEvent> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// Removes and returns the resident span events, oldest first.
    pub fn take_spans(&self) -> Vec<SpanEvent> {
        lock(&self.ring).drain()
    }

    /// Span events dropped by the byte budget so far.
    pub fn spans_dropped(&self) -> u64 {
        lock(&self.ring).dropped()
    }
}

impl Tracer for RingTracer {
    fn level(&self) -> TraceLevel {
        self.level
    }

    fn record_span(&self, event: &SpanEvent) {
        lock(&self.ring).push(event.clone());
    }

    fn record_profile(&self, profile: &EvalProfile) {
        self.metrics.counter("evals").inc();
        self.metrics.counter("rounds").add(profile.rounds);
        self.metrics
            .counter("rule_firings")
            .add(profile.rule_firings);
        self.metrics
            .counter("tuples_derived")
            .add(profile.tuples_derived);
        self.metrics.counter("tuples_new").add(profile.tuples_new);
        if profile.error.is_some() {
            self.metrics.counter("evals_aborted").inc();
        }
        self.metrics.histogram("eval_ns").record(profile.total_ns);
        for f in &profile.ie_functions {
            self.metrics
                .counter(&format!("ie.{}.calls", f.name))
                .add(f.calls);
            self.metrics
                .counter(&format!("ie.{}.memo_hits", f.name))
                .add(f.memo_hits);
            self.metrics
                .counter(&format!("ie.{}.memo_misses", f.name))
                .add(f.memo_misses);
            self.metrics
                .histogram(&format!("ie.{}.latency_ns", f.name))
                .merge(&f.latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;
    use crate::profile::IeFunctionProfile;
    use crate::span::{SpanKind, NO_SPAN};

    #[test]
    fn ring_tracer_aggregates_profiles_into_metrics() {
        let tracer = RingTracer::new(TraceLevel::Spans, 4 * 1024);
        let mut latency = HistogramSnapshot::default();
        latency.record(1_000);
        let profile = EvalProfile {
            rounds: 2,
            rule_firings: 3,
            tuples_derived: 10,
            tuples_new: 7,
            total_ns: 5_000,
            error: Some("limit".into()),
            ie_functions: vec![IeFunctionProfile {
                name: "f".into(),
                calls: 4,
                memo_hits: 3,
                memo_misses: 1,
                latency,
            }],
            ..EvalProfile::default()
        };
        tracer.record_profile(&profile);
        tracer.record_profile(&profile);
        let m = tracer.metrics();
        assert_eq!(m.counter("evals").get(), 2);
        assert_eq!(m.counter("evals_aborted").get(), 2);
        assert_eq!(m.counter("tuples_new").get(), 14);
        assert_eq!(m.counter("ie.f.calls").get(), 8);
        assert_eq!(m.histogram("eval_ns").snapshot().count, 2);
        assert_eq!(m.histogram("ie.f.latency_ns").snapshot().count, 2);
    }

    #[test]
    fn ring_tracer_keeps_spans_across_runs() {
        let tracer = RingTracer::new(TraceLevel::Spans, 64 * 1024);
        for id in 1..=3 {
            tracer.record_span(&SpanEvent {
                id,
                parent: NO_SPAN,
                kind: SpanKind::Rule,
                label: format!("rule {id}"),
                start_ns: id,
                duration_ns: 1,
            });
        }
        assert_eq!(tracer.spans().len(), 3);
        assert_eq!(tracer.take_spans().len(), 3);
        assert!(tracer.spans().is_empty());
    }

    #[test]
    fn null_tracer_accepts_everything() {
        let t = NullTracer;
        t.record_profile(&EvalProfile::default());
        t.record_span(&SpanEvent {
            id: 1,
            parent: NO_SPAN,
            kind: SpanKind::Execute,
            label: String::new(),
            start_ns: 0,
            duration_ns: 0,
        });
        assert_eq!(t.level(), TraceLevel::Off);
    }
}
