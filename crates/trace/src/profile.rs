//! `EvalProfile`: the per-evaluation report — Spannerlog's
//! "EXPLAIN ANALYZE" — with a human-readable table renderer and a
//! JSON-lines exporter for offline analysis.

use crate::metrics::HistogramSnapshot;
use crate::span::{SpanEvent, TraceLevel};
use std::fmt::Write as _;

/// The profile of one fixpoint evaluation: totals, per-stratum and
/// per-rule breakdowns, per-IE-function call statistics, and (at
/// [`TraceLevel::Spans`]) the recorded span events.
///
/// Obtain one from `Session::profile()` / `Snapshot::profile()` after
/// evaluating with tracing at [`TraceLevel::Summary`] or above.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalProfile {
    /// The level the run was traced at.
    pub level: TraceLevel,
    /// Monotonic per-session evaluation sequence number (0 when the
    /// run was not attributed — e.g. constructed by hand).
    pub eval_seq: u64,
    /// Serving request ids whose work this evaluation performed: under
    /// coalescing, one evaluation can pay for many requests, and this
    /// is the attribution trail back to them. Empty outside serving.
    pub request_ids: Vec<String>,
    /// Total evaluation wall time, in nanoseconds.
    pub total_ns: u64,
    /// Fixpoint rounds across all strata.
    pub rounds: u64,
    /// Rule-plan executions across all strata and rounds.
    pub rule_firings: u64,
    /// Tuples produced by rule heads (before deduplication).
    pub tuples_derived: u64,
    /// Tuples actually new to their relation.
    pub tuples_new: u64,
    /// Set when the run aborted (e.g. a limit was exceeded): the
    /// profile then reflects the *partial* progress up to the abort.
    pub error: Option<String>,
    /// Per-stratum breakdown, in execution order.
    pub strata: Vec<StratumProfile>,
    /// Per-IE-function call statistics, sorted by name.
    pub ie_functions: Vec<IeFunctionProfile>,
    /// Recorded span events (empty below [`TraceLevel::Spans`]).
    pub spans: Vec<SpanEvent>,
    /// Span events dropped by the ring buffer's byte budget.
    pub spans_dropped: u64,
    /// Scan-join index lookups answered by the planner's per-run index
    /// cache (zero with the planner off).
    pub index_hits: u64,
    /// Scan-join indexes the run actually built (cache misses).
    pub index_builds: u64,
    /// Regex searches that consulted a literal prefilter.
    pub prefilter_searches: u64,
    /// Prefiltered searches resolved to "no match" without running the
    /// regex VM at all.
    pub prefilter_pruned: u64,
    /// Worker threads the run's pool had available (zero = the run was
    /// fully serial and the `par:` line is omitted).
    pub par_workers: u64,
    /// Shard tasks executed by split-correct parallel rule firings.
    pub par_shards: u64,
    /// IE-call batches executed across the run's rule firings.
    pub par_ie_batches: u64,
    /// Tasks that migrated between worker queues (work stealing).
    pub par_stolen: u64,
    /// Rules the split-correctness analysis forced onto the serial path.
    pub par_serial_rules: u64,
}

/// One stratum's share of an [`EvalProfile`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StratumProfile {
    /// Position in the stratification (0-based).
    pub index: usize,
    /// Fixpoint rounds this stratum ran.
    pub rounds: u64,
    /// Wall time spent in this stratum, in nanoseconds.
    pub total_ns: u64,
    /// Per-rule breakdown, in plan order.
    pub rules: Vec<RuleProfile>,
}

/// One rule's share of an [`EvalProfile`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleProfile {
    /// Head predicate name.
    pub head: String,
    /// The rule's source text (as reconstructed by the parser).
    pub source: String,
    /// 1-based source line of the rule.
    pub line: u32,
    /// Times the rule plan executed (once per round it participated in).
    pub firings: u64,
    /// Tuples its head produced (before deduplication).
    pub tuples_derived: u64,
    /// Tuples actually new to the head relation.
    pub tuples_new: u64,
    /// Rows scanned by this rule's join steps.
    pub join_rows_scanned: u64,
    /// Wall time across all firings, in nanoseconds.
    pub total_ns: u64,
    /// The step order the planner chose for the rule's first firing,
    /// with estimated input cardinalities (empty when the planner is
    /// off or the run was untraced). Steps that moved relative to the
    /// textual body are starred.
    pub plan: String,
}

/// One IE function's call statistics within an [`EvalProfile`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IeFunctionProfile {
    /// Registered function name.
    pub name: String,
    /// Distinct-argument invocations requested by the evaluation.
    pub calls: u64,
    /// Calls answered from the IE memo cache.
    pub memo_hits: u64,
    /// Calls that executed the function (memo miss or uncacheable).
    pub memo_misses: u64,
    /// Latency distribution of the calls, in nanoseconds.
    pub latency: HistogramSnapshot,
}

/// Version of the [`EvalProfile::to_json_lines`] record format,
/// stamped as `"schema"` on every emitted line. Bump when a field is
/// renamed or removed (additions are backward-compatible and don't
/// require a bump).
pub const PROFILE_JSON_SCHEMA: u32 = 1;

/// Formats nanoseconds compactly: `17ns`, `3.4µs`, `1.2ms`, `5.0s`.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Escapes `s` as the contents of a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Pads `s` to `w` columns, left-aligned.
fn pad(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

/// Pads `s` to `w` columns, right-aligned.
fn rpad(s: &str, w: usize) -> String {
    format!("{s:>w$}")
}

impl EvalProfile {
    /// Renders the profile as a fixed-width table — per-rule rows
    /// grouped by stratum, followed by per-IE-function rows.
    ///
    /// ```
    /// use spannerlib_trace::{EvalProfile, RuleProfile, StratumProfile};
    /// let profile = EvalProfile {
    ///     rounds: 2,
    ///     rule_firings: 2,
    ///     strata: vec![StratumProfile {
    ///         index: 0,
    ///         rounds: 2,
    ///         total_ns: 1_500,
    ///         rules: vec![RuleProfile {
    ///             head: "A".into(),
    ///             source: "A(x) <- B(x).".into(),
    ///             line: 1,
    ///             firings: 2,
    ///             tuples_derived: 10,
    ///             tuples_new: 7,
    ///             join_rows_scanned: 10,
    ///             total_ns: 1_000,
    ///             ..RuleProfile::default()
    ///         }],
    ///     }],
    ///     ..EvalProfile::default()
    /// };
    /// let table = profile.render();
    /// assert!(table.contains("A(x) <- B(x)."));
    /// assert!(table.contains("firings"));
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "evaluation: {} | {} strata, {} rounds, {} firings, {} derived ({} new)",
            fmt_ns(self.total_ns),
            self.strata.len(),
            self.rounds,
            self.rule_firings,
            self.tuples_derived,
            self.tuples_new,
        );
        if let Some(err) = &self.error {
            let _ = writeln!(out, "aborted: {err} (profile shows partial progress)");
        }
        if !self.strata.is_empty() {
            let rule_w = self
                .strata
                .iter()
                .flat_map(|s| s.rules.iter())
                .map(|r| r.source.len().min(60))
                .chain(["rule".len()])
                .max()
                .unwrap_or(4);
            let _ = writeln!(
                out,
                "{} {} {} {} {} {} {}",
                pad("stratum", 8),
                pad("rule", rule_w),
                rpad("firings", 8),
                rpad("derived", 8),
                rpad("new", 8),
                rpad("scanned", 9),
                rpad("time", 9),
            );
            for stratum in &self.strata {
                for (i, rule) in stratum.rules.iter().enumerate() {
                    let tag = if i == 0 {
                        format!("{} ({}r)", stratum.index, stratum.rounds)
                    } else {
                        String::new()
                    };
                    let mut src = rule.source.clone();
                    if src.len() > 60 {
                        src.truncate(59);
                        src.push('…');
                    }
                    let _ = writeln!(
                        out,
                        "{} {} {} {} {} {} {}",
                        pad(&tag, 8),
                        pad(&src, rule_w),
                        rpad(&rule.firings.to_string(), 8),
                        rpad(&rule.tuples_derived.to_string(), 8),
                        rpad(&rule.tuples_new.to_string(), 8),
                        rpad(&rule.join_rows_scanned.to_string(), 9),
                        rpad(&fmt_ns(rule.total_ns), 9),
                    );
                    if !rule.plan.is_empty() {
                        let _ = writeln!(out, "{} plan: {}", pad("", 8), rule.plan);
                    }
                }
            }
        }
        if self.index_hits + self.index_builds > 0 || self.prefilter_searches > 0 {
            let rate = match (self.prefilter_pruned * 100).checked_div(self.prefilter_searches) {
                Some(pct) => format!(" ({pct}%)"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "planner: {} indexes built, {} reused | prefilter: {} searches, {} pruned{}",
                self.index_builds,
                self.index_hits,
                self.prefilter_searches,
                self.prefilter_pruned,
                rate,
            );
        }
        if self.par_workers > 0 {
            let _ = writeln!(
                out,
                "par: {} workers | {} shard tasks ({} stolen), {} ie batches | {} serial-fallback rules",
                self.par_workers,
                self.par_shards,
                self.par_stolen,
                self.par_ie_batches,
                self.par_serial_rules,
            );
        }
        if !self.ie_functions.is_empty() {
            let name_w = self
                .ie_functions
                .iter()
                .map(|f| f.name.len())
                .chain(["ie function".len()])
                .max()
                .unwrap_or(11);
            let _ = writeln!(
                out,
                "{} {} {} {} {} {} {}",
                pad("ie function", name_w),
                rpad("calls", 8),
                rpad("hits", 8),
                rpad("misses", 8),
                rpad("p50", 9),
                rpad("p99", 9),
                rpad("total", 9),
            );
            for f in &self.ie_functions {
                // Latency cells of an empty histogram are undefined, not
                // 0ns: quantiles have no samples and the sum timed
                // nothing. Render all of them as `-`.
                let cell = |ns: u64| -> String {
                    if f.latency.count == 0 {
                        "-".to_string()
                    } else {
                        fmt_ns(ns)
                    }
                };
                let _ = writeln!(
                    out,
                    "{} {} {} {} {} {} {}",
                    pad(&f.name, name_w),
                    rpad(&f.calls.to_string(), 8),
                    rpad(&f.memo_hits.to_string(), 8),
                    rpad(&f.memo_misses.to_string(), 8),
                    rpad(&cell(f.latency.p50()), 9),
                    rpad(&cell(f.latency.p99()), 9),
                    rpad(&cell(f.latency.sum), 9),
                );
            }
        }
        if !self.spans.is_empty() || self.spans_dropped > 0 {
            let _ = writeln!(
                out,
                "spans: {} recorded, {} dropped",
                self.spans.len(),
                self.spans_dropped
            );
        }
        out
    }

    /// Exports the profile as JSON lines: one `profile` record, then
    /// one record per rule, IE function, and span. Each line is a
    /// self-contained JSON object with a `"type"` discriminator and a
    /// `"schema"` version ([`PROFILE_JSON_SCHEMA`]), so the output
    /// streams into `jq`/pandas without a wrapping array and consumers
    /// of the slow-query log can detect format changes.
    ///
    /// ```
    /// use spannerlib_trace::EvalProfile;
    /// let lines = EvalProfile::default().to_json_lines();
    /// assert!(lines.starts_with("{\"type\":\"profile\",\"schema\":1"));
    /// assert_eq!(lines.trim_end().lines().count(), 1);
    /// ```
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let request_ids = {
            let ids: Vec<String> = self.request_ids.iter().map(|id| json_str(id)).collect();
            format!("[{}]", ids.join(","))
        };
        let _ = writeln!(
            out,
            "{{\"type\":\"profile\",\"schema\":{PROFILE_JSON_SCHEMA},\
             \"eval_seq\":{},\"request_ids\":{},\
             \"level\":{},\"total_ns\":{},\"rounds\":{},\
             \"rule_firings\":{},\"tuples_derived\":{},\"tuples_new\":{},\
             \"strata\":{},\"spans_dropped\":{},\"index_hits\":{},\
             \"index_builds\":{},\"prefilter_searches\":{},\
             \"prefilter_pruned\":{},\"par_workers\":{},\"par_shards\":{},\
             \"par_ie_batches\":{},\"par_stolen\":{},\
             \"par_serial_rules\":{},\"error\":{}}}",
            self.eval_seq,
            request_ids,
            json_str(self.level.name()),
            self.total_ns,
            self.rounds,
            self.rule_firings,
            self.tuples_derived,
            self.tuples_new,
            self.strata.len(),
            self.spans_dropped,
            self.index_hits,
            self.index_builds,
            self.prefilter_searches,
            self.prefilter_pruned,
            self.par_workers,
            self.par_shards,
            self.par_ie_batches,
            self.par_stolen,
            self.par_serial_rules,
            match &self.error {
                Some(e) => json_str(e),
                None => "null".to_string(),
            },
        );
        for stratum in &self.strata {
            for rule in &stratum.rules {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"rule\",\"schema\":{PROFILE_JSON_SCHEMA},\
                     \"stratum\":{},\"stratum_rounds\":{},\
                     \"head\":{},\"source\":{},\"line\":{},\"firings\":{},\
                     \"tuples_derived\":{},\"tuples_new\":{},\
                     \"join_rows_scanned\":{},\"total_ns\":{},\"plan\":{}}}",
                    stratum.index,
                    stratum.rounds,
                    json_str(&rule.head),
                    json_str(&rule.source),
                    rule.line,
                    rule.firings,
                    rule.tuples_derived,
                    rule.tuples_new,
                    rule.join_rows_scanned,
                    rule.total_ns,
                    json_str(&rule.plan),
                );
            }
        }
        for f in &self.ie_functions {
            let _ = writeln!(
                out,
                "{{\"type\":\"ie\",\"schema\":{PROFILE_JSON_SCHEMA},\
                 \"name\":{},\"calls\":{},\"memo_hits\":{},\
                 \"memo_misses\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\
                 \"max_ns\":{},\"total_ns\":{}}}",
                json_str(&f.name),
                f.calls,
                f.memo_hits,
                f.memo_misses,
                f.latency.p50(),
                f.latency.p90(),
                f.latency.p99(),
                f.latency.max,
                f.latency.sum,
            );
        }
        for span in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"schema\":{PROFILE_JSON_SCHEMA},\
                 \"id\":{},\"parent\":{},\"kind\":{},\
                 \"label\":{},\"start_ns\":{},\"duration_ns\":{}}}",
                span.id,
                span.parent,
                json_str(span.kind.name()),
                json_str(&span.label),
                span.start_ns,
                span.duration_ns,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, NO_SPAN};

    fn sample() -> EvalProfile {
        let mut latency = HistogramSnapshot::default();
        latency.record(500);
        latency.record(2_000);
        EvalProfile {
            level: TraceLevel::Spans,
            eval_seq: 42,
            request_ids: vec!["req-\"quoted\"".into()],
            total_ns: 5_000,
            rounds: 3,
            rule_firings: 4,
            tuples_derived: 20,
            tuples_new: 12,
            error: None,
            strata: vec![StratumProfile {
                index: 0,
                rounds: 3,
                total_ns: 4_000,
                rules: vec![RuleProfile {
                    head: "Out".into(),
                    source: "Out(x) <- In(x), f(x) -> (y).".into(),
                    line: 3,
                    firings: 4,
                    tuples_derived: 20,
                    tuples_new: 12,
                    join_rows_scanned: 40,
                    total_ns: 3_500,
                    plan: "In[10] ⋈ f()".into(),
                }],
            }],
            ie_functions: vec![IeFunctionProfile {
                name: "f".into(),
                calls: 2,
                memo_hits: 1,
                memo_misses: 1,
                latency,
            }],
            spans: vec![SpanEvent {
                id: 1,
                parent: NO_SPAN,
                kind: SpanKind::Execute,
                label: "eval \"with quotes\"".into(),
                start_ns: 0,
                duration_ns: 5_000,
            }],
            spans_dropped: 2,
            index_hits: 6,
            index_builds: 2,
            prefilter_searches: 10,
            prefilter_pruned: 4,
            par_workers: 4,
            par_shards: 8,
            par_ie_batches: 3,
            par_stolen: 2,
            par_serial_rules: 1,
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let table = sample().render();
        assert!(table.contains("Out(x) <- In(x), f(x) -> (y)."));
        assert!(table.contains("ie function"));
        assert!(table.contains("spans: 1 recorded, 2 dropped"));
        assert!(table.contains("plan: In[10] ⋈ f()"));
        assert!(table.contains("planner: 2 indexes built, 6 reused"));
        assert!(table.contains("prefilter: 10 searches, 4 pruned (40%)"));
        assert!(table.contains(
            "par: 4 workers | 8 shard tasks (2 stolen), 3 ie batches | 1 serial-fallback rules"
        ));
    }

    #[test]
    fn render_skips_par_line_for_serial_runs() {
        let mut p = sample();
        p.par_workers = 0;
        assert!(!p.render().contains("par:"));
        // But the JSON keeps the fields for uniform downstream parsing.
        assert!(p.to_json_lines().contains("\"par_workers\":0"));
    }

    #[test]
    fn render_dashes_empty_latency_quantiles() {
        // An IE function registered but never timed (e.g. an aborted
        // run) has an empty histogram: its quantiles are undefined and
        // must render as `-`, not `0ns`.
        let mut p = sample();
        p.ie_functions[0].latency = HistogramSnapshot::default();
        let table = p.render();
        let ie_row = table.lines().find(|l| l.starts_with('f')).unwrap();
        assert!(ie_row.contains('-'), "expected dashes in: {ie_row}");
        assert!(!ie_row.contains("0ns"), "expected no 0ns in: {ie_row}");
        // Non-empty histograms keep real quantiles.
        assert!(sample().render().contains("µs"));
    }

    #[test]
    fn render_skips_planner_line_when_planner_off() {
        let mut p = sample();
        p.index_hits = 0;
        p.index_builds = 0;
        p.prefilter_searches = 0;
        p.prefilter_pruned = 0;
        assert!(!p.render().contains("planner:"));
    }

    #[test]
    fn render_reports_aborts() {
        let mut p = sample();
        p.error = Some("limit exceeded".into());
        assert!(p.render().contains("aborted: limit exceeded"));
    }

    #[test]
    fn json_lines_are_one_record_per_entity() {
        let lines: Vec<String> = sample()
            .to_json_lines()
            .trim_end()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"type\":\"profile\""));
        assert!(lines[0].contains("\"schema\":1"));
        assert!(lines[0].contains("\"eval_seq\":42"));
        assert!(lines[0].contains("\"request_ids\":[\"req-\\\"quoted\\\"\"]"));
        assert!(lines.iter().all(|l| l.contains("\"schema\":1")));
        assert!(lines[1].contains("\"type\":\"rule\""));
        assert!(lines[2].contains("\"type\":\"ie\""));
        assert!(lines[3].contains("\"type\":\"span\""));
        // Quotes in labels must be escaped.
        assert!(lines[3].contains("eval \\\"with quotes\\\""));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(3_400), "3.4µs");
        assert_eq!(fmt_ns(1_200_000), "1.2ms");
        assert_eq!(fmt_ns(5_000_000_000), "5.00s");
    }
}
