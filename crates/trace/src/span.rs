//! The span vocabulary: trace levels, span kinds, and the event record.

use std::fmt;

/// How much detail an evaluation run records.
///
/// Levels are totally ordered — each level includes everything below it:
///
/// ```
/// use spannerlib_trace::TraceLevel;
/// assert!(TraceLevel::Off < TraceLevel::Summary);
/// assert!(TraceLevel::Summary < TraceLevel::Spans);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// No profiling: the evaluation hot path pays only the engine's
    /// pre-existing counters (a few integer increments per rule firing).
    #[default]
    Off,
    /// Per-rule and per-IE-function counters and wall times — the
    /// `EvalProfile` — but no individual span events.
    Summary,
    /// Everything in `Summary` plus hierarchical timed span events
    /// (execute → stratum → round → rule firing → join step → IE
    /// batch), collected into a byte-bounded ring buffer.
    Spans,
}

impl TraceLevel {
    /// Whether profiling counters are collected at this level.
    pub fn summarizes(self) -> bool {
        self >= TraceLevel::Summary
    }

    /// Whether individual span events are recorded at this level.
    pub fn records_spans(self) -> bool {
        self >= TraceLevel::Spans
    }

    /// Stable lowercase name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Summary => "summary",
            TraceLevel::Spans => "spans",
        }
    }
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Position of a span in the evaluation hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One whole fixpoint evaluation (the root span).
    Execute,
    /// One stratum run to fixpoint.
    Stratum,
    /// One fixpoint round within a stratum.
    Round,
    /// One rule-plan execution (a "rule firing").
    Rule,
    /// One scan-join step inside a rule firing.
    Join,
    /// One batched IE-function step inside a rule firing (all distinct
    /// argument tuples of one `f(…) -> (…)` atom).
    IeBatch,
    /// One document shard of a split-correct parallel rule firing,
    /// executed on a worker thread and merged back deterministically.
    Shard,
}

impl SpanKind {
    /// Stable lowercase name (used by exporters and renderers).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Execute => "execute",
            SpanKind::Stratum => "stratum",
            SpanKind::Round => "round",
            SpanKind::Rule => "rule",
            SpanKind::Join => "join",
            SpanKind::IeBatch => "ie_batch",
            SpanKind::Shard => "shard",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of an open span within one evaluation run. `NO_SPAN` (0)
/// means "no parent" / "spans disabled"; real ids start at 1.
pub type SpanId = u64;

/// The id used for "no span": the root's parent, and the id handed out
/// when span recording is off.
pub const NO_SPAN: SpanId = 0;

/// One closed span: a timed node of the evaluation tree.
///
/// Timestamps are nanoseconds relative to the start of the evaluation
/// run that produced the event, so events serialize without any wall
/// clock and replay deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Id unique within the run (dense, starting at 1).
    pub id: SpanId,
    /// Parent span id ([`NO_SPAN`] for the root).
    pub parent: SpanId,
    /// Hierarchy position.
    pub kind: SpanKind,
    /// Human-readable label (rule source, stratum index, IE function).
    pub label: String,
    /// Start offset from the run epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub duration_ns: u64,
}

impl SpanEvent {
    /// Approximate resident size, charged against ring-buffer budgets.
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<SpanEvent>() + self.label.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_named() {
        assert!(TraceLevel::Off < TraceLevel::Summary);
        assert!(TraceLevel::Summary.summarizes());
        assert!(!TraceLevel::Summary.records_spans());
        assert!(TraceLevel::Spans.records_spans());
        assert_eq!(TraceLevel::Spans.to_string(), "spans");
        assert_eq!(SpanKind::IeBatch.to_string(), "ie_batch");
    }

    #[test]
    fn span_bytes_charge_the_label() {
        let a = SpanEvent {
            id: 1,
            parent: NO_SPAN,
            kind: SpanKind::Execute,
            label: String::new(),
            start_ns: 0,
            duration_ns: 0,
        };
        let mut b = a.clone();
        b.label = "x".repeat(100);
        assert_eq!(b.bytes(), a.bytes() + 100);
    }
}
