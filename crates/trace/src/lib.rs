//! # spannerlib_trace
//!
//! Structured tracing, metrics, and per-rule profiling for the
//! Spannerlog engine — the measurement substrate behind
//! `Session::profile()` and the `trace_smoke` / `bench_trace` tooling.
//!
//! The crate is deliberately **zero-dependency** (std only) and splits
//! into four layers:
//!
//! - **Vocabulary** ([`TraceLevel`], [`SpanKind`], [`SpanEvent`]): what
//!   gets recorded. Levels are ordered `Off < Summary < Spans`; spans
//!   form the hierarchy execute → stratum → round → rule → join /
//!   IE batch.
//! - **Collection** ([`RunTrace`], [`SpanRing`]): a single-threaded
//!   collector the engine threads through one fixpoint evaluation, and
//!   the byte-bounded ring buffer its span events land in. Every
//!   `RunTrace` method is a no-op at `Off`, so the untraced hot path
//!   pays only a branch.
//! - **Reporting** ([`EvalProfile`] with [`EvalProfile::render`] and
//!   [`EvalProfile::to_json_lines`]): the per-run report — per-rule
//!   wall time, firings, tuple and join-row counts, per-IE-function
//!   call / memo-hit / latency statistics.
//! - **Sinks** ([`Tracer`], [`NullTracer`], [`RingTracer`],
//!   [`MetricsRegistry`]): long-lived, thread-safe receivers that
//!   aggregate profiles across runs into counters, gauges, and
//!   fixed-bucket latency [`Histogram`]s with p50/p90/p99.
//!
//! ```
//! use spannerlib_trace::{RunTrace, SpanKind, TraceLevel, NO_SPAN};
//!
//! // The engine drives a RunTrace through one evaluation…
//! let mut trace = RunTrace::new(TraceLevel::Spans, 0);
//! let root = trace.open(NO_SPAN, SpanKind::Execute, || "eval".into());
//! let rule = trace.register_rule(0, "Out", "Out(x) <- In(x).", 1);
//! trace.round(0);
//! let t0 = trace.now_ns();
//! trace.rule_fired(rule, 12, 9, t0);
//! trace.close(root);
//!
//! // …and finishing it yields the run's EvalProfile.
//! let profile = trace.finish(None).expect("tracing was on");
//! assert_eq!(profile.tuples_new, 9);
//! assert!(profile.render().contains("Out(x) <- In(x)."));
//! ```

mod expo;
mod metrics;
mod profile;
mod ring;
mod run;
mod span;
mod tracer;

pub use expo::{check_exposition, encode_prometheus, sanitize_metric_name, ExpositionStats};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Labels, MetricsRegistry, MetricsSnapshot, Series,
    HISTOGRAM_BUCKETS,
};
pub use profile::{fmt_ns, EvalProfile, IeFunctionProfile, RuleProfile, StratumProfile};
pub use ring::SpanRing;
pub use run::{RunTrace, DEFAULT_SPAN_BUFFER_BYTES};
pub use span::{SpanEvent, SpanId, SpanKind, TraceLevel, NO_SPAN};
pub use tracer::{NullTracer, RingTracer, Tracer};
