//! `RunTrace`: the single-threaded collector the engine threads through
//! one fixpoint evaluation. It accumulates per-rule / per-stratum /
//! per-IE counters and (at [`TraceLevel::Spans`]) timed span events,
//! and is folded into an [`EvalProfile`] when the run finishes.

use crate::profile::{EvalProfile, IeFunctionProfile, RuleProfile, StratumProfile};
use crate::ring::SpanRing;
use crate::span::{SpanEvent, SpanId, SpanKind, TraceLevel, NO_SPAN};
use std::collections::BTreeMap;
use std::time::Instant;

/// Default byte budget for the per-run span ring buffer (256 KiB —
/// roughly a few thousand spans).
pub const DEFAULT_SPAN_BUFFER_BYTES: usize = 256 * 1024;

/// A span opened but not yet closed.
#[derive(Debug)]
struct OpenSpan {
    id: SpanId,
    parent: SpanId,
    kind: SpanKind,
    label: String,
    start_ns: u64,
}

/// Per-stratum accumulator.
#[derive(Debug, Default)]
struct StratumAcc {
    rounds: u64,
    total_ns: u64,
    /// Indices into `RunTrace::rules` for the rules of this stratum.
    rules: Vec<usize>,
}

/// The mutable trace state of one evaluation run.
///
/// All methods are no-ops when the level is [`TraceLevel::Off`], so the
/// engine can call them unconditionally; the off-path cost is a branch.
/// Durations are measured by taking a timestamp with [`RunTrace::now_ns`]
/// before the work and passing it back to the recording call, which
/// computes the elapsed time itself:
///
/// ```
/// use spannerlib_trace::{RunTrace, TraceLevel};
/// let mut trace = RunTrace::new(TraceLevel::Summary, 0);
/// let rule = trace.register_rule(0, "Out", "Out(x) <- In(x).", 1);
/// trace.round(0);
/// let t0 = trace.now_ns();
/// // ... execute the rule plan ...
/// trace.rule_fired(rule, 10, 7, t0);
/// let profile = trace.finish(None).unwrap();
/// assert_eq!(profile.rule_firings, 1);
/// assert_eq!(profile.strata[0].rules[0].tuples_new, 7);
/// ```
#[derive(Debug)]
pub struct RunTrace {
    level: TraceLevel,
    epoch: Instant,
    next_span: SpanId,
    open: Vec<OpenSpan>,
    ring: SpanRing,
    strata: Vec<StratumAcc>,
    rules: Vec<RuleProfile>,
    ie: BTreeMap<String, IeFunctionProfile>,
    totals: EvalTotals,
    eval_seq: u64,
    request_ids: Vec<String>,
}

#[derive(Debug, Default)]
struct EvalTotals {
    rounds: u64,
    rule_firings: u64,
    tuples_derived: u64,
    tuples_new: u64,
    index_hits: u64,
    index_builds: u64,
    par_workers: u64,
    par_shards: u64,
    par_ie_batches: u64,
    par_stolen: u64,
    par_serial_rules: u64,
}

impl RunTrace {
    /// A collector for one run at `level`. `span_budget_bytes` bounds
    /// the span ring buffer; `0` selects [`DEFAULT_SPAN_BUFFER_BYTES`].
    /// Below [`TraceLevel::Spans`] no ring memory is reserved.
    pub fn new(level: TraceLevel, span_budget_bytes: usize) -> RunTrace {
        let budget = if !level.records_spans() {
            0
        } else if span_budget_bytes == 0 {
            DEFAULT_SPAN_BUFFER_BYTES
        } else {
            span_budget_bytes
        };
        RunTrace {
            level,
            epoch: Instant::now(),
            next_span: NO_SPAN,
            open: Vec::new(),
            ring: SpanRing::new(budget),
            strata: Vec::new(),
            rules: Vec::new(),
            ie: BTreeMap::new(),
            totals: EvalTotals::default(),
            eval_seq: 0,
            request_ids: Vec::new(),
        }
    }

    /// A collector that records nothing ([`TraceLevel::Off`]).
    pub fn disabled() -> RunTrace {
        RunTrace::new(TraceLevel::Off, 0)
    }

    /// Attributes this run to its serving context: the session's eval
    /// sequence number and the request ids whose work the (possibly
    /// coalesced) evaluation performs. Both land verbatim on the
    /// resulting [`EvalProfile`]. No-op at [`TraceLevel::Off`].
    pub fn serving_context(&mut self, eval_seq: u64, request_ids: Vec<String>) {
        if !self.enabled() {
            return;
        }
        self.eval_seq = eval_seq;
        self.request_ids = request_ids;
    }

    /// The level this run records at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether any profiling is happening (level ≥ `Summary`).
    pub fn enabled(&self) -> bool {
        self.level.summarizes()
    }

    /// Nanoseconds since this run's epoch; `0` when disabled, so the
    /// off-path never touches the clock.
    pub fn now_ns(&self) -> u64 {
        if self.enabled() {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Registers one rule of `stratum` for profiling and returns its
    /// handle for [`RunTrace::rule_fired`] / [`RunTrace::join_scanned`].
    /// Returns `0` when disabled (all recording calls then no-op).
    pub fn register_rule(&mut self, stratum: usize, head: &str, source: &str, line: u32) -> usize {
        if !self.enabled() {
            return 0;
        }
        while self.strata.len() <= stratum {
            let index = self.strata.len();
            self.strata.push(StratumAcc::default());
            self.strata[index].rules = Vec::new();
        }
        let id = self.rules.len();
        self.rules.push(RuleProfile {
            head: head.to_string(),
            source: source.to_string(),
            line,
            ..RuleProfile::default()
        });
        self.strata[stratum].rules.push(id);
        id
    }

    /// Counts one fixpoint round of `stratum`.
    pub fn round(&mut self, stratum: usize) {
        if !self.enabled() {
            return;
        }
        self.totals.rounds += 1;
        if let Some(acc) = self.strata.get_mut(stratum) {
            acc.rounds += 1;
        }
    }

    /// Records one firing of rule `rule` (a handle from
    /// [`RunTrace::register_rule`]): `derived` head tuples produced,
    /// `new` of them actually new, timed from `t0` (a
    /// [`RunTrace::now_ns`] timestamp taken before the firing).
    pub fn rule_fired(&mut self, rule: usize, derived: u64, new: u64, t0: u64) {
        if !self.enabled() {
            return;
        }
        let dur = self.now_ns().saturating_sub(t0);
        self.totals.rule_firings += 1;
        self.totals.tuples_derived += derived;
        self.totals.tuples_new += new;
        if let Some(r) = self.rules.get_mut(rule) {
            r.firings += 1;
            r.tuples_derived += derived;
            r.tuples_new += new;
            r.total_ns += dur;
        }
    }

    /// Charges `rows` scanned by a join step to rule `rule`.
    pub fn join_scanned(&mut self, rule: usize, rows: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(r) = self.rules.get_mut(rule) {
            r.join_rows_scanned += rows;
        }
    }

    /// Records the step order the planner chose for rule `rule`. Only
    /// the *first* firing's plan is kept — it is the one computed with
    /// full relation cardinalities; later semi-naive delta variants
    /// re-plan against near-empty deltas and would overwrite it with a
    /// degenerate picture. The label closure only runs when the plan is
    /// actually recorded.
    pub fn plan_chosen(&mut self, rule: usize, label: impl FnOnce() -> String) {
        if !self.enabled() {
            return;
        }
        if let Some(r) = self.rules.get_mut(rule) {
            if r.plan.is_empty() {
                r.plan = label();
            }
        }
    }

    /// Accumulates the run's scan-index cache totals (hits = lookups
    /// answered from cache, builds = indexes constructed).
    pub fn index_cache(&mut self, hits: u64, builds: u64) {
        if !self.enabled() {
            return;
        }
        self.totals.index_hits += hits;
        self.totals.index_builds += builds;
    }

    /// Records one IE-function invocation: `memo_hit` is `Some(true)`
    /// for a cache hit, `Some(false)` for a miss, `None` when the call
    /// bypassed the memo (uncacheable or no cache configured); timed
    /// from `t0`.
    pub fn ie_call(&mut self, function: &str, memo_hit: Option<bool>, t0: u64) {
        if !self.enabled() {
            return;
        }
        let dur = self.now_ns().saturating_sub(t0);
        self.ie_call_ns(function, memo_hit, dur);
    }

    /// Like [`RunTrace::ie_call`] but with a pre-measured duration — for
    /// calls timed on a worker thread and recorded serially afterwards.
    pub fn ie_call_ns(&mut self, function: &str, memo_hit: Option<bool>, dur_ns: u64) {
        if !self.enabled() {
            return;
        }
        let entry = self
            .ie
            .entry(function.to_string())
            .or_insert_with(|| IeFunctionProfile {
                name: function.to_string(),
                ..IeFunctionProfile::default()
            });
        entry.calls += 1;
        match memo_hit {
            Some(true) => entry.memo_hits += 1,
            Some(false) | None => entry.memo_misses += 1,
        }
        entry.latency.record(dur_ns);
    }

    /// Accumulates one parallel-evaluation summary: pool `workers` (kept
    /// as a max — the pool does not change size mid-run), shard tasks
    /// executed, off-thread IE batches, tasks stolen between workers,
    /// and rules the split-correctness analysis kept serial (a property
    /// of the program, kept as a max rather than summed per run).
    pub fn parallel_summary(
        &mut self,
        workers: u64,
        shards: u64,
        ie_batches: u64,
        stolen: u64,
        serial_rules: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.totals.par_workers = self.totals.par_workers.max(workers);
        self.totals.par_shards += shards;
        self.totals.par_ie_batches += ie_batches;
        self.totals.par_stolen += stolen;
        self.totals.par_serial_rules = self.totals.par_serial_rules.max(serial_rules);
    }

    /// A detached collector for one worker-thread shard of a parallel
    /// rule firing. The fork shares this run's level and epoch (so its
    /// timestamps land on the same axis) but owns all of its state;
    /// slot `0` is its single anonymous rule accumulator, which
    /// [`RunTrace::merge_fork`] folds back into a real rule. Forks get a
    /// small private span ring — shards are short-lived and merged
    /// eagerly, so they never need the full run budget.
    pub fn fork(&self) -> RunTrace {
        let budget = if self.level.records_spans() {
            64 * 1024
        } else {
            0
        };
        RunTrace {
            level: self.level,
            epoch: self.epoch,
            next_span: NO_SPAN,
            open: Vec::new(),
            ring: SpanRing::new(budget),
            strata: Vec::new(),
            rules: vec![RuleProfile::default()],
            ie: BTreeMap::new(),
            totals: EvalTotals::default(),
            eval_seq: 0,
            request_ids: Vec::new(),
        }
    }

    /// Folds a shard fork back into this run: the fork's anonymous rule
    /// counters are charged to rule `rule`, its IE profiles merge into
    /// this run's, and its span events are renumbered into this run's id
    /// space with their roots re-parented under `parent`. Call serially
    /// (after the parallel scope), in a deterministic shard order.
    pub fn merge_fork(&mut self, rule: usize, parent: SpanId, mut fork: RunTrace) {
        if !self.enabled() {
            return;
        }
        // Close anything the shard left open (e.g. its error path).
        let end = fork.now_ns();
        while let Some(span) = fork.open.pop() {
            fork.ring.push(SpanEvent {
                id: span.id,
                parent: span.parent,
                kind: span.kind,
                label: span.label,
                start_ns: span.start_ns,
                duration_ns: end.saturating_sub(span.start_ns),
            });
        }
        let shard_rule = &fork.rules[0];
        self.totals.rule_firings += fork.totals.rule_firings;
        self.totals.tuples_derived += fork.totals.tuples_derived;
        self.totals.tuples_new += fork.totals.tuples_new;
        if let Some(r) = self.rules.get_mut(rule) {
            r.firings += shard_rule.firings;
            r.tuples_derived += shard_rule.tuples_derived;
            r.tuples_new += shard_rule.tuples_new;
            r.join_rows_scanned += shard_rule.join_rows_scanned;
            r.total_ns += shard_rule.total_ns;
        }
        for (name, profile) in std::mem::take(&mut fork.ie) {
            let entry = self.ie.entry(name).or_insert_with(|| IeFunctionProfile {
                name: profile.name.clone(),
                ..IeFunctionProfile::default()
            });
            entry.calls += profile.calls;
            entry.memo_hits += profile.memo_hits;
            entry.memo_misses += profile.memo_misses;
            entry.latency.merge(&profile.latency);
        }
        let offset = self.next_span;
        for mut event in fork.ring.drain() {
            event.id += offset;
            event.parent = if event.parent == NO_SPAN {
                parent
            } else {
                event.parent + offset
            };
            self.ring.push(event);
        }
        self.ring.add_dropped(fork.ring.dropped());
        self.next_span += fork.next_span;
    }

    /// Charges wall time from `t0` to `stratum` (call when the stratum
    /// reaches fixpoint or the run aborts inside it).
    pub fn stratum_done(&mut self, stratum: usize, t0: u64) {
        if !self.enabled() {
            return;
        }
        let dur = self.now_ns().saturating_sub(t0);
        if let Some(acc) = self.strata.get_mut(stratum) {
            acc.total_ns += dur;
        }
    }

    /// Opens a span under `parent` ([`NO_SPAN`] for the root). The
    /// label closure only runs when spans are recorded, so the off- and
    /// summary-paths never format strings. Returns [`NO_SPAN`] when
    /// spans are off — safe to pass to [`RunTrace::close`] and as a
    /// `parent`.
    pub fn open(
        &mut self,
        parent: SpanId,
        kind: SpanKind,
        label: impl FnOnce() -> String,
    ) -> SpanId {
        if !self.level.records_spans() {
            return NO_SPAN;
        }
        self.next_span += 1;
        let id = self.next_span;
        let start_ns = self.now_ns();
        self.open.push(OpenSpan {
            id,
            parent,
            kind,
            label: label(),
            start_ns,
        });
        id
    }

    /// Closes span `id`, recording its event in the ring buffer.
    /// Closing [`NO_SPAN`] or an unknown id is a no-op.
    pub fn close(&mut self, id: SpanId) {
        if id == NO_SPAN {
            return;
        }
        // Spans close in stack order in practice, so scan from the end.
        let Some(pos) = self.open.iter().rposition(|s| s.id == id) else {
            return;
        };
        let span = self.open.swap_remove(pos);
        let end = self.now_ns();
        self.ring.push(SpanEvent {
            id: span.id,
            parent: span.parent,
            kind: span.kind,
            label: span.label,
            start_ns: span.start_ns,
            duration_ns: end.saturating_sub(span.start_ns),
        });
    }

    /// Ends the run and assembles the [`EvalProfile`] — `None` when
    /// disabled. `error` marks an aborted run (the profile then shows
    /// the partial progress); any spans still open (unwound by the
    /// abort) are closed at the finish timestamp.
    pub fn finish(mut self, error: Option<String>) -> Option<EvalProfile> {
        if !self.enabled() {
            return None;
        }
        let total_ns = self.now_ns();
        // Close leaked spans innermost-first so parents outlive children.
        while let Some(span) = self.open.pop() {
            self.ring.push(SpanEvent {
                id: span.id,
                parent: span.parent,
                kind: span.kind,
                label: span.label,
                start_ns: span.start_ns,
                duration_ns: total_ns.saturating_sub(span.start_ns),
            });
        }
        let spans_dropped = self.ring.dropped();
        let mut spans = self.ring.drain();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let rules = self.rules;
        let strata = self
            .strata
            .into_iter()
            .enumerate()
            .map(|(index, acc)| StratumProfile {
                index,
                rounds: acc.rounds,
                total_ns: acc.total_ns,
                rules: acc.rules.iter().map(|&i| rules[i].clone()).collect(),
            })
            .collect();
        Some(EvalProfile {
            level: self.level,
            eval_seq: self.eval_seq,
            request_ids: self.request_ids,
            total_ns,
            rounds: self.totals.rounds,
            rule_firings: self.totals.rule_firings,
            tuples_derived: self.totals.tuples_derived,
            tuples_new: self.totals.tuples_new,
            error,
            strata,
            ie_functions: self.ie.into_values().collect(),
            spans,
            spans_dropped,
            index_hits: self.totals.index_hits,
            index_builds: self.totals.index_builds,
            // Filled by the session from the regex crate's process-wide
            // prefilter counters (the trace crate never sees regexes).
            prefilter_searches: 0,
            prefilter_pruned: 0,
            par_workers: self.totals.par_workers,
            par_shards: self.totals.par_shards,
            par_ie_batches: self.totals.par_ie_batches,
            par_stolen: self.totals.par_stolen,
            par_serial_rules: self.totals.par_serial_rules,
        })
    }
}

impl Default for RunTrace {
    fn default() -> Self {
        RunTrace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_run_is_free_and_yields_no_profile() {
        let mut trace = RunTrace::disabled();
        assert!(!trace.enabled());
        assert_eq!(trace.now_ns(), 0);
        let rule = trace.register_rule(0, "A", "A(x) <- B(x).", 1);
        trace.round(0);
        trace.rule_fired(rule, 5, 5, 0);
        trace.ie_call("f", Some(true), 0);
        trace.plan_chosen(rule, || unreachable!());
        trace.index_cache(3, 1);
        let id = trace.open(NO_SPAN, SpanKind::Execute, || unreachable!());
        assert_eq!(id, NO_SPAN);
        trace.close(id);
        assert!(trace.finish(None).is_none());
    }

    #[test]
    fn summary_run_accumulates_per_rule_and_per_ie() {
        let mut trace = RunTrace::new(TraceLevel::Summary, 0);
        let r0 = trace.register_rule(0, "A", "A(x) <- B(x).", 1);
        let r1 = trace.register_rule(1, "C", "C(x) <- A(x).", 2);
        trace.round(0);
        trace.round(0);
        trace.round(1);
        trace.rule_fired(r0, 10, 6, trace.now_ns());
        trace.rule_fired(r0, 4, 0, trace.now_ns());
        trace.rule_fired(r1, 6, 6, trace.now_ns());
        trace.join_scanned(r0, 14);
        trace.ie_call("f", Some(false), trace.now_ns());
        trace.ie_call("f", Some(true), trace.now_ns());
        trace.ie_call("g", None, trace.now_ns());
        let p = trace.finish(None).unwrap();
        assert_eq!(p.rounds, 3);
        assert_eq!(p.rule_firings, 3);
        assert_eq!(p.tuples_derived, 20);
        assert_eq!(p.tuples_new, 12);
        assert_eq!(p.strata.len(), 2);
        assert_eq!(p.strata[0].rounds, 2);
        assert_eq!(p.strata[0].rules[0].firings, 2);
        assert_eq!(p.strata[0].rules[0].join_rows_scanned, 14);
        assert_eq!(p.strata[1].rules[0].head, "C");
        assert_eq!(p.ie_functions.len(), 2);
        let f = &p.ie_functions[0];
        assert_eq!(
            (f.name.as_str(), f.calls, f.memo_hits, f.memo_misses),
            ("f", 2, 1, 1)
        );
        // Summary level records no span events.
        assert!(p.spans.is_empty());
    }

    #[test]
    fn plan_chosen_keeps_first_and_index_totals_accumulate() {
        let mut trace = RunTrace::new(TraceLevel::Summary, 0);
        let r = trace.register_rule(0, "A", "A(x) <- B(x).", 1);
        trace.plan_chosen(r, || "B[5]".into());
        // A semi-naive delta re-plan must not overwrite the full plan.
        trace.plan_chosen(r, || "B[0]".into());
        trace.index_cache(3, 1);
        trace.index_cache(2, 0);
        let p = trace.finish(None).unwrap();
        assert_eq!(p.strata[0].rules[0].plan, "B[5]");
        assert_eq!((p.index_hits, p.index_builds), (5, 1));
    }

    #[test]
    fn spans_nest_and_leaked_spans_close_on_finish() {
        let mut trace = RunTrace::new(TraceLevel::Spans, 0);
        let root = trace.open(NO_SPAN, SpanKind::Execute, || "eval".into());
        let stratum = trace.open(root, SpanKind::Stratum, || "stratum 0".into());
        let round = trace.open(stratum, SpanKind::Round, || "round 1".into());
        trace.close(round);
        // `stratum` and `root` leak (as on an abort path).
        let p = trace.finish(Some("boom".into())).unwrap();
        assert_eq!(p.spans.len(), 3);
        assert_eq!(p.error.as_deref(), Some("boom"));
        let root_ev = p
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Execute)
            .unwrap();
        let stratum_ev = p
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Stratum)
            .unwrap();
        let round_ev = p.spans.iter().find(|s| s.kind == SpanKind::Round).unwrap();
        assert_eq!(stratum_ev.parent, root_ev.id);
        assert_eq!(round_ev.parent, stratum_ev.id);
        assert!(root_ev.duration_ns >= stratum_ev.duration_ns);
    }

    #[test]
    fn fork_merges_counters_ie_and_spans_back() {
        let mut trace = RunTrace::new(TraceLevel::Spans, 0);
        let r = trace.register_rule(0, "A", "A(x) <- B(x).", 1);
        let root = trace.open(NO_SPAN, SpanKind::Rule, || "A".into());
        trace.join_scanned(r, 5);
        trace.ie_call("f", Some(true), trace.now_ns());

        let mut fork = trace.fork();
        let shard = fork.open(NO_SPAN, SpanKind::Shard, || "shard 0".into());
        let batch = fork.open(shard, SpanKind::IeBatch, || "f".into());
        fork.close(batch);
        fork.close(shard);
        fork.join_scanned(0, 7);
        fork.ie_call_ns("f", Some(false), 123);
        fork.ie_call_ns("g", None, 456);

        trace.merge_fork(r, root, fork);
        trace.close(root);
        let p = trace.finish(None).unwrap();
        assert_eq!(p.strata[0].rules[0].join_rows_scanned, 12);
        let f = p.ie_functions.iter().find(|i| i.name == "f").unwrap();
        assert_eq!((f.calls, f.memo_hits, f.memo_misses), (2, 1, 1));
        assert!(p.ie_functions.iter().any(|i| i.name == "g"));
        // Fork spans are renumbered into the parent id space and the
        // shard root hangs off the rule span.
        assert_eq!(p.spans.len(), 3);
        let rule_ev = p.spans.iter().find(|s| s.kind == SpanKind::Rule).unwrap();
        let shard_ev = p.spans.iter().find(|s| s.kind == SpanKind::Shard).unwrap();
        let batch_ev = p
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::IeBatch)
            .unwrap();
        assert_eq!(shard_ev.parent, rule_ev.id);
        assert_eq!(batch_ev.parent, shard_ev.id);
        let mut ids: Vec<_> = p.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3, "merged span ids must stay unique");
    }

    #[test]
    fn parallel_summary_accumulates_and_reaches_the_profile() {
        let mut trace = RunTrace::new(TraceLevel::Summary, 0);
        trace.parallel_summary(4, 6, 2, 1, 3);
        trace.parallel_summary(4, 2, 1, 0, 3);
        let p = trace.finish(None).unwrap();
        assert_eq!(p.par_workers, 4);
        assert_eq!(p.par_shards, 8);
        assert_eq!(p.par_ie_batches, 3);
        assert_eq!(p.par_stolen, 1);
        assert_eq!(p.par_serial_rules, 3);
    }

    #[test]
    fn span_budget_bounds_memory() {
        let mut trace = RunTrace::new(TraceLevel::Spans, 2_048);
        for i in 0..1_000 {
            let id = trace.open(NO_SPAN, SpanKind::Round, || format!("round {i}"));
            trace.close(id);
        }
        let p = trace.finish(None).unwrap();
        assert!(p.spans_dropped > 0);
        let resident: usize = p.spans.iter().map(|s| s.bytes()).sum();
        assert!(resident <= 2_048);
    }
}
