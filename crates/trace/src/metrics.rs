//! The metrics registry: counters, gauges, and fixed-bucket latency
//! histograms with quantile estimation.
//!
//! Everything here is lock-free on the update path — plain relaxed
//! atomics — so instruments can be shared across serving threads and
//! bumped from the evaluation hot loop without coordination. The only
//! lock is the registry's name table, taken on (rare) instrument
//! registration, never on update.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotone event counter.
///
/// ```
/// use spannerlib_trace::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (resident bytes, live entries, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 also holds zero), so the range spans ~1 ns to
/// ~18 minutes — plenty for IE-call and rule-firing latencies.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram (power-of-two nanosecond buckets)
/// with lock-free recording and p50/p90/p99 estimation.
///
/// ```
/// use spannerlib_trace::Histogram;
/// let h = Histogram::new();
/// for ns in [100, 200, 300, 400, 10_000] { h.record(ns); }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert!(snap.p50() >= 100 && snap.p50() <= 512);
/// assert!(snap.p99() >= 10_000);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket covering `ns`.
fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Folds a previously taken snapshot into this histogram (used to
    /// aggregate per-run profiles into a long-lived registry).
    pub fn merge(&self, snap: &HistogramSnapshot) {
        for (b, n) in self.buckets.iter().zip(snap.buckets.iter()) {
            b.fetch_add(*n, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (individual fields are
    /// read relaxed; concurrent recording may skew them by a sample).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` covers
    /// `[2^i, 2^(i+1))` ns).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in nanoseconds.
    pub sum: u64,
    /// Largest observed value, in nanoseconds.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Records one observation without atomics — for single-threaded
    /// per-run collection (see `RunTrace`), where a full [`Histogram`]
    /// would pay for synchronization nobody needs.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), clamped to the observed maximum; `0` when
    /// empty. Fixed buckets bound the error to a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i + 1 >= 63 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (ns).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (ns).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (ns).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observed value (ns); `0` when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Renders the snapshot's summary statistics as one JSON object —
    /// the wire shape served by `spannerd`'s `/profile` endpoint.
    ///
    /// ```
    /// use spannerlib_trace::Histogram;
    /// let h = Histogram::new();
    /// h.record(1_000);
    /// assert_eq!(
    ///     h.snapshot().summary_json(),
    ///     r#"{"count":1,"mean_ns":1000,"p50_ns":1000,"p90_ns":1000,"p99_ns":1000,"max_ns":1000}"#
    /// );
    /// ```
    pub fn summary_json(&self) -> String {
        format!(
            r#"{{"count":{},"mean_ns":{},"p50_ns":{},"p90_ns":{},"p99_ns":{},"max_ns":{}}}"#,
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

/// An interned, immutable label set (`route="/execute"`, …), shared by
/// every instrument and snapshot series carrying it.
pub type Labels = Arc<[(String, String)]>;

/// The registry's label-set table: each distinct set of label pairs is
/// interned once and addressed by a small id, so instruments key on
/// `(name, label-set id)` instead of re-hashing label vectors.
#[derive(Debug)]
struct LabelTable {
    /// Id → interned set. Id `0` is always the empty set.
    sets: Vec<Labels>,
    /// Reverse index for interning.
    ids: BTreeMap<Vec<(String, String)>, u32>,
}

impl Default for LabelTable {
    fn default() -> Self {
        LabelTable {
            sets: vec![Arc::from(Vec::new().into_boxed_slice())],
            ids: BTreeMap::new(),
        }
    }
}

impl LabelTable {
    /// The id of `labels`, interning on first sight. Pair order is
    /// preserved (callers pass a stable order per call site).
    fn intern(&mut self, labels: &[(&str, &str)]) -> u32 {
        if labels.is_empty() {
            return 0;
        }
        let key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        if let Some(id) = self.ids.get(&key) {
            return *id;
        }
        let id = self.sets.len() as u32;
        self.sets.push(Arc::from(key.clone().into_boxed_slice()));
        self.ids.insert(key, id);
        id
    }

    fn get(&self, id: u32) -> Labels {
        self.sets[id as usize].clone()
    }
}

/// One observed time series in a [`MetricsSnapshot`]: a metric name, an
/// interned label set, and the value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct Series<T> {
    /// Metric (family) name as registered.
    pub name: String,
    /// Label pairs, in registration order; empty for unlabeled series.
    pub labels: Labels,
    /// The value captured by the snapshot.
    pub value: T,
}

impl<T> Series<T> {
    fn same_series<U>(&self, other: &Series<U>) -> bool {
        self.name == other.name && self.labels == other.labels
    }
}

/// A point-in-time copy of every series in a [`MetricsRegistry`] —
/// the input to the Prometheus exposition encoder
/// ([`crate::encode_prometheus`]) and the unit of delta windows:
/// [`MetricsSnapshot::delta`] subtracts an earlier snapshot so scrape
/// intervals can be turned into rates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter series, ordered by (name, label-set registration order).
    pub counters: Vec<Series<u64>>,
    /// Gauge series, same order contract.
    pub gauges: Vec<Series<i64>>,
    /// Histogram series, same order contract.
    pub histograms: Vec<Series<HistogramSnapshot>>,
}

impl MetricsSnapshot {
    /// The window between `earlier` and `self`: counters and histogram
    /// buckets/counts/sums subtract (saturating — a restarted registry
    /// reads as a fresh window, never as underflow); gauges keep the
    /// current value (they are instantaneous, not cumulative). Series
    /// absent from `earlier` pass through whole.
    ///
    /// ```
    /// use spannerlib_trace::MetricsRegistry;
    /// let reg = MetricsRegistry::new();
    /// reg.counter("reqs").add(5);
    /// let t0 = reg.snapshot();
    /// reg.counter("reqs").add(3);
    /// let window = reg.snapshot().delta(&t0);
    /// assert_eq!(window.counters[0].value, 3);
    /// ```
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|s| {
                let before = earlier
                    .counters
                    .iter()
                    .find(|e| e.same_series(s))
                    .map_or(0, |e| e.value);
                Series {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    value: s.value.saturating_sub(before),
                }
            })
            .collect();
        let gauges = self.gauges.clone();
        let histograms = self
            .histograms
            .iter()
            .map(|s| {
                let mut value = s.value.clone();
                if let Some(e) = earlier.histograms.iter().find(|e| e.same_series(s)) {
                    for (b, prev) in value.buckets.iter_mut().zip(e.value.buckets.iter()) {
                        *b = b.saturating_sub(*prev);
                    }
                    value.count = value.count.saturating_sub(e.value.count);
                    value.sum = value.sum.saturating_sub(e.value.sum);
                    // `max` cannot be windowed from cumulative state; the
                    // lifetime max is the best available bound.
                }
                Series {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A named registry of [`Counter`]s, [`Gauge`]s, and [`Histogram`]s,
/// optionally dimensioned by label pairs.
///
/// Instruments are created on first use and shared thereafter
/// (`Arc`-handed-out), so call sites can cache the handle and skip the
/// name lookup on the hot path. Labeled variants address one series of
/// a family: `counter_with("http_requests_total",
/// &[("route", "/execute"), ("status", "2xx")])` — label sets are
/// interned once in a side table, so repeated lookups hash a small id,
/// not the pairs.
///
/// ```
/// use spannerlib_trace::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// reg.counter("evals").inc();
/// reg.counter("evals").add(2);
/// reg.histogram("eval_ns").record(1_500);
/// assert_eq!(reg.counter("evals").get(), 3);
/// assert_eq!(reg.counters()[0], ("evals".to_string(), 3));
///
/// let ok = reg.counter_with("http_requests_total", &[("status", "2xx")]);
/// ok.inc();
/// assert_eq!(
///     reg.counters().iter().find(|(n, _)| n.contains("2xx")).unwrap().1,
///     1,
/// );
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    labels: Mutex<LabelTable>,
    counters: Mutex<BTreeMap<(String, u32), Arc<Counter>>>,
    gauges: Mutex<BTreeMap<(String, u32), Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<(String, u32), Arc<Histogram>>>,
}

/// Std-mutex lock that shrugs off poisoning: metrics must never turn a
/// panicking evaluation into a second panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders `name{k="v",…}` for human-readable listings (the exposition
/// encoder does its own escaping; this is for [`MetricsRegistry::counters`]
/// and friends).
fn series_name(name: &str, labels: &Labels) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
    format!("{name}{{{}}}", pairs.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn label_id(&self, labels: &[(&str, &str)]) -> u32 {
        lock(&self.labels).intern(labels)
    }

    /// The unlabeled counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter series `name{labels}`, created at zero on first use.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = self.label_id(labels);
        lock(&self.counters)
            .entry((name.to_string(), id))
            .or_default()
            .clone()
    }

    /// The unlabeled gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge series `name{labels}`, created at zero on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = self.label_id(labels);
        lock(&self.gauges)
            .entry((name.to_string(), id))
            .or_default()
            .clone()
    }

    /// The unlabeled histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// The histogram series `name{labels}`, created empty on first use.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = self.label_id(labels);
        lock(&self.histograms)
            .entry((name.to_string(), id))
            .or_default()
            .clone()
    }

    /// All counter values, sorted by name; labeled series render as
    /// `name{k="v"}`.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let labels = lock(&self.labels);
        lock(&self.counters)
            .iter()
            .map(|((name, id), v)| (series_name(name, &labels.get(*id)), v.get()))
            .collect()
    }

    /// All gauge values, sorted by name; labeled series render as
    /// `name{k="v"}`.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        let labels = lock(&self.labels);
        lock(&self.gauges)
            .iter()
            .map(|((name, id), v)| (series_name(name, &labels.get(*id)), v.get()))
            .collect()
    }

    /// Snapshots of all histograms, sorted by name; labeled series
    /// render as `name{k="v"}`.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let labels = lock(&self.labels);
        lock(&self.histograms)
            .iter()
            .map(|((name, id), v)| (series_name(name, &labels.get(*id)), v.snapshot()))
            .collect()
    }

    /// A structured point-in-time copy of every series — the input to
    /// the exposition encoder and to [`MetricsSnapshot::delta`] rate
    /// windows.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let labels = lock(&self.labels);
        let counters = lock(&self.counters)
            .iter()
            .map(|((name, id), v)| Series {
                name: name.clone(),
                labels: labels.get(*id),
                value: v.get(),
            })
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|((name, id), v)| Series {
                name: name.clone(),
                labels: labels.get(*id),
                value: v.get(),
            })
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|((name, id), v)| Series {
                name: name.clone(),
                labels: labels.get(*id),
                value: v.snapshot(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_monotone_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut prev = 0;
        for ns in [0u64, 1, 7, 100, 10_000, 1 << 30, u64::MAX] {
            let b = bucket_index(ns);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn quantiles_bound_the_true_value_within_2x() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert!(s.p50() >= 1_000 && s.p50() < 2_048, "p50 = {}", s.p50());
        assert!(s.p99() >= 1_000_000, "p99 = {}", s.p99());
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.mean(), (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.p50(), s.p99(), s.mean(), s.count), (0, 0, 0, 0));
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        a.record(10);
        let b = Histogram::new();
        b.record(1_000);
        b.merge(&a.snapshot());
        let s = b.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 1_010);
        assert_eq!(s.max, 1_000);
    }

    #[test]
    fn registry_hands_out_shared_instruments() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("x");
        let c2 = reg.counter("x");
        c1.inc();
        c2.inc();
        assert_eq!(reg.counter("x").get(), 2);
        reg.gauge("g").set(-5);
        assert_eq!(reg.gauges(), vec![("g".to_string(), -5)]);
        reg.histogram("h").record(3);
        assert_eq!(reg.histograms()[0].1.count, 1);
    }
}
