//! The metrics registry: counters, gauges, and fixed-bucket latency
//! histograms with quantile estimation.
//!
//! Everything here is lock-free on the update path — plain relaxed
//! atomics — so instruments can be shared across serving threads and
//! bumped from the evaluation hot loop without coordination. The only
//! lock is the registry's name table, taken on (rare) instrument
//! registration, never on update.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotone event counter.
///
/// ```
/// use spannerlib_trace::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (resident bytes, live entries, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 also holds zero), so the range spans ~1 ns to
/// ~18 minutes — plenty for IE-call and rule-firing latencies.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram (power-of-two nanosecond buckets)
/// with lock-free recording and p50/p90/p99 estimation.
///
/// ```
/// use spannerlib_trace::Histogram;
/// let h = Histogram::new();
/// for ns in [100, 200, 300, 400, 10_000] { h.record(ns); }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert!(snap.p50() >= 100 && snap.p50() <= 512);
/// assert!(snap.p99() >= 10_000);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket covering `ns`.
fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Folds a previously taken snapshot into this histogram (used to
    /// aggregate per-run profiles into a long-lived registry).
    pub fn merge(&self, snap: &HistogramSnapshot) {
        for (b, n) in self.buckets.iter().zip(snap.buckets.iter()) {
            b.fetch_add(*n, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (individual fields are
    /// read relaxed; concurrent recording may skew them by a sample).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` covers
    /// `[2^i, 2^(i+1))` ns).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in nanoseconds.
    pub sum: u64,
    /// Largest observed value, in nanoseconds.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Records one observation without atomics — for single-threaded
    /// per-run collection (see `RunTrace`), where a full [`Histogram`]
    /// would pay for synchronization nobody needs.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), clamped to the observed maximum; `0` when
    /// empty. Fixed buckets bound the error to a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i + 1 >= 63 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (ns).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (ns).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (ns).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observed value (ns); `0` when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Renders the snapshot's summary statistics as one JSON object —
    /// the wire shape served by `spannerd`'s `/profile` endpoint.
    ///
    /// ```
    /// use spannerlib_trace::Histogram;
    /// let h = Histogram::new();
    /// h.record(1_000);
    /// assert_eq!(
    ///     h.snapshot().summary_json(),
    ///     r#"{"count":1,"mean_ns":1000,"p50_ns":1000,"p90_ns":1000,"p99_ns":1000,"max_ns":1000}"#
    /// );
    /// ```
    pub fn summary_json(&self) -> String {
        format!(
            r#"{{"count":{},"mean_ns":{},"p50_ns":{},"p90_ns":{},"p99_ns":{},"max_ns":{}}}"#,
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

/// A named registry of [`Counter`]s, [`Gauge`]s, and [`Histogram`]s.
///
/// Instruments are created on first use and shared thereafter
/// (`Arc`-handed-out), so call sites can cache the handle and skip the
/// name lookup on the hot path.
///
/// ```
/// use spannerlib_trace::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// reg.counter("evals").inc();
/// reg.counter("evals").add(2);
/// reg.histogram("eval_ns").record(1_500);
/// assert_eq!(reg.counter("evals").get(), 3);
/// assert_eq!(reg.counters()[0], ("evals".to_string(), 3));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Std-mutex lock that shrugs off poisoning: metrics must never turn a
/// panicking evaluation into a second panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        lock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        lock(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        lock(&self.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshots of all histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_monotone_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut prev = 0;
        for ns in [0u64, 1, 7, 100, 10_000, 1 << 30, u64::MAX] {
            let b = bucket_index(ns);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn quantiles_bound_the_true_value_within_2x() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert!(s.p50() >= 1_000 && s.p50() < 2_048, "p50 = {}", s.p50());
        assert!(s.p99() >= 1_000_000, "p99 = {}", s.p99());
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.mean(), (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.p50(), s.p99(), s.mean(), s.count), (0, 0, 0, 0));
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        a.record(10);
        let b = Histogram::new();
        b.record(1_000);
        b.merge(&a.snapshot());
        let s = b.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 1_010);
        assert_eq!(s.max, 1_000);
    }

    #[test]
    fn registry_hands_out_shared_instruments() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("x");
        let c2 = reg.counter("x");
        c1.inc();
        c2.inc();
        assert_eq!(reg.counter("x").get(), 2);
        reg.gauge("g").set(-5);
        assert_eq!(reg.gauges(), vec![("g".to_string(), -5)]);
        reg.histogram("h").record(3);
        assert_eq!(reg.histograms()[0].1.count, 1);
    }
}
