//! Prometheus text-format exposition for [`MetricsSnapshot`].
//!
//! [`encode_prometheus`] renders every series of a snapshot in the
//! [text exposition format] scrapers understand: `# TYPE` comments,
//! one `name{labels} value` line per series, and power-of-two latency
//! histograms expanded into cumulative `_bucket{le=...}` / `_sum` /
//! `_count` families. Metric and label *names* outside the exposition
//! grammar are sanitized to `_`; label *values* are escaped
//! (`\\`, `\"`, `\n`) so arbitrary route strings survive.
//!
//! [`check_exposition`] is the matching validator: a tiny line-level
//! parser used by proptests, the serving smoke bench, and CI's boot
//! check to gate that a live `/metrics` body actually parses.
//!
//! [text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{HistogramSnapshot, Labels, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Rewrites `name` into the exposition metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: out-of-grammar bytes become `_`, and an
/// empty or digit-leading name gains a `_` prefix. Internal dotted
/// names like `ie.ticket.calls` come out as `ie_ticket_calls`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Rewrites `name` into the label-name grammar `[a-zA-Z_][a-zA-Z0-9_]*`
/// (no colons, unlike metric names).
fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}` (or nothing for the empty set), with an
/// optional extra pair appended — used for histogram `le`.
fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn encode_histogram(out: &mut String, name: &str, labels: &Labels, h: &HistogramSnapshot) {
    // Cumulative buckets. Bucket `i` covers [2^i, 2^(i+1)) ns, so its
    // inclusive upper bound is 2^(i+1)-1 — except the last bucket,
    // which is a catch-all and only surfaces via +Inf. Trailing empty
    // buckets are elided (cumulative values make them redundant), but
    // at least one finite bucket is always emitted.
    let mut highest = 0usize;
    for (i, &b) in h.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
        if b > 0 {
            highest = i;
        }
    }
    let mut cumulative = 0u64;
    for (i, &b) in h.buckets.iter().enumerate().take(highest + 1) {
        cumulative += b;
        let le = (1u64 << (i + 1)) - 1;
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            render_labels(labels, Some(("le", &le.to_string())))
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        render_labels(labels, Some(("le", "+Inf"))),
        h.count
    ));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        render_labels(labels, None),
        h.sum
    ));
    out.push_str(&format!(
        "{name}_count{} {}\n",
        render_labels(labels, None),
        h.count
    ));
}

/// Encodes `snap` as a Prometheus text-format exposition body.
///
/// Families are emitted counters first, then gauges, then histograms,
/// each preceded by a `# TYPE` line on its first series. Series within
/// a family keep snapshot order. The output always ends with `\n` (or
/// is empty for an empty snapshot).
///
/// ```
/// use spannerlib_trace::{encode_prometheus, MetricsRegistry};
/// let reg = MetricsRegistry::new();
/// reg.counter_with("http_requests_total", &[("route", "/execute")]).inc();
/// let body = encode_prometheus(&reg.snapshot());
/// assert!(body.contains("# TYPE http_requests_total counter"));
/// assert!(body.contains("http_requests_total{route=\"/execute\"} 1"));
/// ```
pub fn encode_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for s in &snap.counters {
        let name = sanitize_metric_name(&s.name);
        if name != last_family {
            out.push_str(&format!("# TYPE {name} counter\n"));
            last_family = name.clone();
        }
        out.push_str(&format!(
            "{name}{} {}\n",
            render_labels(&s.labels, None),
            s.value
        ));
    }
    last_family.clear();
    for s in &snap.gauges {
        let name = sanitize_metric_name(&s.name);
        if name != last_family {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            last_family = name.clone();
        }
        out.push_str(&format!(
            "{name}{} {}\n",
            render_labels(&s.labels, None),
            s.value
        ));
    }
    last_family.clear();
    for s in &snap.histograms {
        let name = sanitize_metric_name(&s.name);
        if name != last_family {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            last_family = name.clone();
        }
        encode_histogram(&mut out, &name, &s.labels, &s.value);
    }
    out
}

/// Summary statistics from a successful [`check_exposition`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Sample lines (non-comment, non-blank).
    pub samples: usize,
    /// `# TYPE` comment lines.
    pub families: usize,
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validates one `{k="v",...}` block; `s` starts at `{`. Returns the
/// rest after the closing `}`.
fn check_labels(s: &str, line_no: usize) -> Result<&str, String> {
    let mut rest = &s[1..];
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = &rest[..eq];
        if !is_label_name(name) {
            return Err(format!("line {line_no}: bad label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value not quoted"));
        }
        // Scan the escaped value.
        let bytes = rest.as_bytes();
        let mut i = 1;
        loop {
            match bytes.get(i) {
                None => return Err(format!("line {line_no}: unterminated label value")),
                Some(b'\\') => match bytes.get(i + 1) {
                    Some(b'\\') | Some(b'"') | Some(b'n') => i += 2,
                    _ => return Err(format!("line {line_no}: bad escape in label value")),
                },
                Some(b'"') => break,
                Some(b'\n') => return Err(format!("line {line_no}: raw newline in label value")),
                Some(_) => i += 1,
            }
        }
        rest = &rest[i + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if let Some(r) = rest.strip_prefix('}') {
            return Ok(r);
        } else {
            return Err(format!("line {line_no}: expected ',' or '}}' after label"));
        }
    }
}

/// Validates a Prometheus text-format body line by line: `# TYPE`
/// comments declare known types, sample lines have a well-formed
/// metric name, optional label block, and a numeric value (integer,
/// float, or `+Inf`/`-Inf`/`NaN`). Returns counts on success and the
/// first offending line on failure. Used by the serving smoke bench
/// and CI to gate live `/metrics` bodies, and by proptests to close
/// the loop on [`encode_prometheus`].
pub fn check_exposition(body: &str) -> Result<ExpositionStats, String> {
    let mut stats = ExpositionStats::default();
    for (idx, line) in body.lines().enumerate() {
        let line_no = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(typed) = comment.strip_prefix("TYPE ") {
                let mut parts = typed.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without metric name"))?;
                if !is_metric_name(name) {
                    return Err(format!("line {line_no}: bad metric name in TYPE: {name:?}"));
                }
                match parts.next() {
                    Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                    other => {
                        return Err(format!("line {line_no}: bad TYPE kind: {other:?}"));
                    }
                }
                stats.families += 1;
            }
            // Other comments (# HELP, freeform) pass through.
            continue;
        }
        // Sample line: name [labels] value [timestamp]
        let name_end = line
            .find(['{', ' ', '\t'])
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let name = &line[..name_end];
        if !is_metric_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let mut rest = &line[name_end..];
        if rest.starts_with('{') {
            rest = check_labels(rest, line_no)?;
        }
        let mut parts = rest.split_whitespace();
        let value = parts
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let numeric =
            matches!(value, "+Inf" | "-Inf" | "Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !numeric {
            return Err(format!("line {line_no}: bad sample value {value:?}"));
        }
        if let Some(ts) = parts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {line_no}: bad timestamp {ts:?}"));
            }
        }
        if parts.next().is_some() {
            return Err(format!("line {line_no}: trailing tokens after sample"));
        }
        stats.samples += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn encodes_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("evals").add(3);
        reg.counter_with(
            "http_requests_total",
            &[("route", "/execute"), ("status", "2xx")],
        )
        .add(7);
        reg.gauge("connections_active").set(2);
        reg.histogram("eval_ns").record(5);
        reg.histogram("eval_ns").record(1_000);
        let body = encode_prometheus(&reg.snapshot());

        assert!(body.contains("# TYPE evals counter\nevals 3\n"));
        assert!(body.contains("http_requests_total{route=\"/execute\",status=\"2xx\"} 7\n"));
        assert!(body.contains("# TYPE connections_active gauge\nconnections_active 2\n"));
        assert!(body.contains("# TYPE eval_ns histogram\n"));
        // 5 ns lands in bucket 2 ([4,8)) → le=7; 1000 ns in bucket 9
        // ([512,1024)) → le=1023.
        assert!(body.contains("eval_ns_bucket{le=\"7\"} 1\n"));
        assert!(body.contains("eval_ns_bucket{le=\"1023\"} 2\n"));
        assert!(body.contains("eval_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(body.contains("eval_ns_sum 1005\n"));
        assert!(body.contains("eval_ns_count 2\n"));

        let stats = check_exposition(&body).expect("self-encoded body parses");
        assert!(stats.samples >= 8);
        assert_eq!(stats.families, 4);
    }

    #[test]
    fn sanitizes_dotted_names_and_escapes_values() {
        let reg = MetricsRegistry::new();
        reg.counter("ie.ticket.calls").inc();
        reg.counter_with("weird", &[("q", "a\"b\\c\nd")]).inc();
        let body = encode_prometheus(&reg.snapshot());
        assert!(body.contains("ie_ticket_calls 1\n"));
        assert!(body.contains(r#"weird{q="a\"b\\c\nd"} 1"#));
        check_exposition(&body).expect("escaped body parses");
    }

    #[test]
    fn checker_rejects_malformed_lines() {
        assert!(check_exposition("1bad_name 3\n").is_err());
        assert!(check_exposition("name{k=\"unterminated} 3\n").is_err());
        assert!(check_exposition("name{k=\"v\"} notanumber\n").is_err());
        assert!(check_exposition("# TYPE name nonsense\n").is_err());
        assert!(check_exposition("name 3 12345 extra\n").is_err());
        assert!(check_exposition("").is_ok());
        assert!(check_exposition("name{k=\"v\"} +Inf\n").is_ok());
        assert!(check_exposition("name 3 12345\n").is_ok());
    }

    #[test]
    fn delta_windows_subtract() {
        let reg = MetricsRegistry::new();
        reg.counter("reqs").add(10);
        reg.histogram("lat").record(100);
        let t0 = reg.snapshot();
        reg.counter("reqs").add(5);
        reg.histogram("lat").record(200);
        let window = reg.snapshot().delta(&t0);
        assert_eq!(window.counters[0].value, 5);
        assert_eq!(window.histograms[0].value.count, 1);
        assert_eq!(window.histograms[0].value.sum, 200);
    }
}
