//! A byte-budgeted ring buffer for span events.

use crate::span::SpanEvent;
use std::collections::VecDeque;

/// A bounded collector of [`SpanEvent`]s: memory is capped by a byte
/// budget, and once the budget is full the *oldest* events are dropped
/// first — a flight recorder, not an unbounded log.
///
/// ```
/// use spannerlib_trace::{SpanEvent, SpanKind, SpanRing, NO_SPAN};
/// let ev = |id: u64| SpanEvent {
///     id, parent: NO_SPAN, kind: SpanKind::Round,
///     label: "x".repeat(64), start_ns: 0, duration_ns: 1,
/// };
/// let mut ring = SpanRing::new(4 * ev(0).bytes());
/// for id in 0..100 { ring.push(ev(id)); }
/// assert!(ring.bytes() <= ring.budget());
/// assert_eq!(ring.dropped(), 96);
/// // The survivors are the most recent events.
/// assert_eq!(ring.iter().next().unwrap().id, 96);
/// ```
#[derive(Debug)]
pub struct SpanRing {
    events: VecDeque<SpanEvent>,
    bytes: usize,
    budget: usize,
    dropped: u64,
}

impl SpanRing {
    /// An empty ring bounded by `budget_bytes`. A zero budget records
    /// nothing (every push is counted as dropped).
    pub fn new(budget_bytes: usize) -> SpanRing {
        SpanRing {
            events: VecDeque::new(),
            bytes: 0,
            budget: budget_bytes,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest events until the budget
    /// holds. An event alone larger than the whole budget is dropped.
    pub fn push(&mut self, event: SpanEvent) {
        let size = event.bytes();
        if size > self.budget {
            self.dropped += 1;
            return;
        }
        self.events.push_back(event);
        self.bytes += size;
        while self.bytes > self.budget {
            let victim = self.events.pop_front().expect("bytes > 0 implies events");
            self.bytes -= victim.bytes();
            self.dropped += 1;
        }
    }

    /// Oldest-to-newest iteration over the resident events.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter()
    }

    /// Removes and returns every resident event, oldest first. The
    /// dropped counter survives.
    pub fn drain(&mut self) -> Vec<SpanEvent> {
        self.bytes = 0;
        self.events.drain(..).collect()
    }

    /// Number of resident events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are resident.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Approximate resident bytes (events + labels).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Events dropped so far — pushed while full (oldest evicted) or
    /// individually oversized.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Folds drops observed elsewhere (a per-shard fork ring) into this
    /// ring's counter, so merged traces report a complete total.
    pub fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, NO_SPAN};

    fn ev(id: u64, label_len: usize) -> SpanEvent {
        SpanEvent {
            id,
            parent: NO_SPAN,
            kind: SpanKind::Rule,
            label: "y".repeat(label_len),
            start_ns: id,
            duration_ns: 1,
        }
    }

    #[test]
    fn budget_is_a_hard_bound_under_churn() {
        let budget = 10 * ev(0, 32).bytes();
        let mut ring = SpanRing::new(budget);
        for id in 0..10_000 {
            ring.push(ev(id, (id % 64) as usize));
            assert!(ring.bytes() <= budget, "budget violated at push {id}");
        }
        assert!(ring.dropped() > 0);
        assert!(!ring.is_empty());
        // Events survive newest-first from the tail.
        let last = ring.iter().last().unwrap();
        assert_eq!(last.id, 9_999);
    }

    #[test]
    fn oversized_events_are_dropped_not_wedged() {
        let mut ring = SpanRing::new(64);
        ring.push(ev(1, 4096));
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn drain_empties_but_keeps_drop_counter() {
        let mut ring = SpanRing::new(usize::MAX);
        ring.push(ev(1, 4));
        ring.push(ev(2, 4));
        let out = ring.drain();
        assert_eq!(out.len(), 2);
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.bytes(), 0);
    }

    #[test]
    fn zero_budget_records_nothing() {
        let mut ring = SpanRing::new(0);
        ring.push(ev(1, 0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }
}
