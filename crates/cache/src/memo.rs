//! The content-addressed IE memo table.
//!
//! IE functions are stateless mappings from an input tuple to a relation
//! of output rows, so `(function name, argument values, output arity)`
//! fully determines the result — document texts are immutable once
//! interned, and compaction never reuses a `DocId`, so a span argument
//! pins its content for as long as the entry can be observed. The memo
//! therefore caches outputs across fixpoint reruns *and* across
//! `PreparedQuery` executions, trading a byte budget for the dominant
//! cost of warm-path serving: re-running extraction over documents the
//! session has already seen.
//!
//! Eviction is LRU over a configurable byte budget. Sizes are estimated
//! (string payloads + enum footprints + a fixed per-entry overhead);
//! the point is a stable bound, not an exact allocator accounting.

use crate::stats::CacheStats;
use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHashSet};
use spannerlib_core::{DocId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cached output rows, shaped exactly like the engine's `IeOutput`.
pub type MemoOutput = Vec<Vec<Value>>;

/// The memo handle shared between a session, its evaluation runs, and
/// its snapshots.
pub type SharedIeMemo = Arc<Mutex<IeMemo>>;

/// The content address of one IE invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Registered function name.
    pub function: Arc<str>,
    /// Concrete argument values of the call.
    pub args: Vec<Value>,
    /// Output arity expected by the calling IE atom (functions like
    /// `rgx` validate and shape output against it).
    pub n_outputs: usize,
}

impl MemoKey {
    /// Builds a key from a call site.
    pub fn new(function: &str, args: &[Value], n_outputs: usize) -> MemoKey {
        MemoKey {
            function: Arc::from(function),
            args: args.to_vec(),
            n_outputs,
        }
    }

    fn bytes(&self) -> usize {
        self.function.len() + self.args.iter().map(value_bytes).sum::<usize>()
    }
}

/// Approximate resident size of one value: enum footprint plus owned
/// string payload (spans, ints, bools, floats carry no heap payload).
fn value_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Str(s) => s.len(),
            _ => 0,
        }
}

fn output_bytes(rows: &MemoOutput) -> usize {
    rows.iter()
        .map(|row| row.iter().map(value_bytes).sum::<usize>())
        .sum()
}

/// Fixed per-entry overhead charged on top of key/output payloads
/// (hash-map slot, LRU index entry, `Arc` headers).
const ENTRY_OVERHEAD: usize = 128;

struct MemoEntry {
    output: Arc<MemoOutput>,
    bytes: usize,
    tick: u64,
    /// The map key, shared with the LRU index so recency refreshes on
    /// the hit path never deep-clone the key.
    key: Arc<MemoKey>,
}

/// A byte-budgeted LRU memo table for IE call results.
///
/// Lookups return shared `Arc` handles so hits never deep-copy output
/// rows. The table is single-threaded by itself; wrap it in
/// [`SharedIeMemo`] for the session/snapshot sharing pattern.
pub struct IeMemo {
    entries: FxHashMap<Arc<MemoKey>, MemoEntry>,
    /// LRU index: recency tick → key. Ticks are unique, so this is a
    /// total order; the smallest tick is the eviction victim.
    lru: BTreeMap<u64, Arc<MemoKey>>,
    tick: u64,
    bytes: usize,
    budget: usize,
    stats: CacheStats,
}

impl IeMemo {
    /// An empty memo with the given byte budget. A budget of zero
    /// caches nothing (every insert is rejected as oversized), but
    /// callers normally gate the whole cache off instead.
    pub fn new(budget_bytes: usize) -> IeMemo {
        IeMemo {
            entries: FxHashMap::default(),
            lru: BTreeMap::new(),
            tick: 0,
            bytes: 0,
            budget: budget_bytes,
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Approximate bytes currently resident.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters, with `entries`/`bytes` reflecting the current
    /// residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            bytes: self.bytes,
            ..self.stats
        }
    }

    /// Returns the current stats and resets the *activity* counters
    /// (hits, misses, insertions, evictions, oversized) to zero. The
    /// residency figures (`entries`/`bytes`) are reported as-is and
    /// kept — they describe state, not activity.
    pub fn take_stats(&mut self) -> CacheStats {
        let out = self.stats();
        self.stats = CacheStats::default();
        out
    }

    /// Looks up a call, counting a hit or miss and refreshing recency
    /// on hit.
    pub fn get(&mut self, key: &MemoKey) -> Option<Arc<MemoOutput>> {
        let next_tick = self.tick + 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.tick = next_tick;
                self.lru.remove(&entry.tick);
                entry.tick = next_tick;
                self.lru.insert(next_tick, entry.key.clone());
                self.stats.hits += 1;
                Some(entry.output.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Probes a whole batch of keys under the *one* lock acquisition
    /// the caller already holds, returning one slot per key in order.
    ///
    /// This is the contention-aware path for parallel evaluation: a
    /// rule firing with `n` distinct argument tuples pays one
    /// `Mutex<IeMemo>` round-trip for all its probes instead of `n`
    /// (and the misses are then computed off-lock, on worker threads,
    /// before a single [`IeMemo::insert_batch`]).
    pub fn get_batch(&mut self, keys: &[MemoKey]) -> Vec<Option<Arc<MemoOutput>>> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// Inserts a batch of computed results under one lock acquisition.
    /// Each entry behaves exactly like an [`IeMemo::insert`]; entries
    /// later in the batch are more recent for LRU purposes.
    pub fn insert_batch(
        &mut self,
        entries: impl IntoIterator<Item = (MemoKey, Arc<MemoOutput>)>,
        doc_bytes: impl Fn(DocId) -> usize,
    ) {
        for (key, output) in entries {
            self.insert(key, output, &doc_bytes);
        }
    }

    /// Stores a call result, evicting least-recently-used entries until
    /// the budget holds. An entry larger than the whole budget is
    /// rejected (counted in [`CacheStats::oversized`]); re-inserting an
    /// existing key replaces it.
    ///
    /// `doc_bytes` resolves a document id to its text length. Every
    /// *distinct* document a span in the key or output references is
    /// charged in full: resident entries are GC roots that pin their
    /// documents against compaction, so the byte budget must account
    /// for the pinned text — a 40-byte span over a 4 KiB note costs
    /// 4 KiB, not `size_of::<Value>()` — or span-keyed workloads could
    /// root unbounded document memory from a "small" cache.
    pub fn insert(
        &mut self,
        key: MemoKey,
        output: Arc<MemoOutput>,
        doc_bytes: impl Fn(DocId) -> usize,
    ) {
        let mut pinned_docs: FxHashSet<DocId> = FxHashSet::default();
        let mut collect = |values: &[Value]| {
            for v in values {
                if let Value::Span(s) = v {
                    pinned_docs.insert(s.doc);
                }
            }
        };
        collect(&key.args);
        for row in output.iter() {
            collect(row);
        }
        let pinned_bytes: usize = pinned_docs.into_iter().map(doc_bytes).sum();
        let entry_bytes = key.bytes() + output_bytes(&output) + pinned_bytes + ENTRY_OVERHEAD;
        if entry_bytes > self.budget {
            self.stats.oversized += 1;
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.tick);
            self.bytes -= old.bytes;
        }
        self.bytes += entry_bytes;
        self.tick += 1;
        let key = Arc::new(key);
        self.lru.insert(self.tick, key.clone());
        self.entries.insert(
            key.clone(),
            MemoEntry {
                output,
                bytes: entry_bytes,
                tick: self.tick,
                key,
            },
        );
        self.stats.insertions += 1;
        while self.bytes > self.budget {
            let (_, victim) = self.lru.pop_first().expect("bytes > 0 implies entries");
            let evicted = self.entries.remove(&victim).expect("lru and map agree");
            self.bytes -= evicted.bytes;
            self.stats.evictions += 1;
        }
    }

    /// Drops every entry (keeps lifetime counters).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.bytes = 0;
    }

    /// Drops every entry cached under `function`, returning how many
    /// were removed. Called by the engine when a function is
    /// (re-)registered: a new body invalidates all addresses under that
    /// name, while entries of unrelated functions stay warm.
    pub fn purge_function(&mut self, function: &str) -> usize {
        let victims: Vec<Arc<MemoKey>> = self
            .entries
            .keys()
            .filter(|k| k.function.as_ref() == function)
            .cloned()
            .collect();
        for key in &victims {
            if let Some(entry) = self.entries.remove(key) {
                self.lru.remove(&entry.tick);
                self.bytes -= entry.bytes;
            }
        }
        victims.len()
    }

    /// Marks every `DocId` reachable from resident entries — span
    /// arguments in keys and spans in cached output rows. Cached
    /// entries are GC *roots*: compaction must not tombstone a document
    /// a cached output still points into.
    pub fn mark_doc_roots(&self, refs: &mut crate::DocRefCounts) {
        for (key, entry) in &self.entries {
            for v in &key.args {
                refs.retain_value(v);
            }
            for row in entry.output.iter() {
                for v in row {
                    refs.retain_value(v);
                }
            }
        }
    }

    /// Drops entries that reference any document for which `dead`
    /// returns `true`. Not needed for the engine's standard compaction
    /// (memo entries are roots there), but lets aggressive callers
    /// reclaim memo-pinned documents first and compact second.
    pub fn purge_docs(&mut self, dead: impl Fn(DocId) -> bool) -> usize {
        let refs_dead = |values: &[Value]| {
            values.iter().any(|v| match v {
                Value::Span(s) => dead(s.doc),
                _ => false,
            })
        };
        let mut victims: Vec<Arc<MemoKey>> = Vec::new();
        for (key, entry) in &self.entries {
            if refs_dead(&key.args) || entry.output.iter().any(|row| refs_dead(row)) {
                victims.push(key.clone());
            }
        }
        for key in &victims {
            if let Some(entry) = self.entries.remove(key) {
                self.lru.remove(&entry.tick);
                self.bytes -= entry.bytes;
                self.stats.evictions += 1;
            }
        }
        victims.len()
    }
}

// The memo crosses threads behind `SharedIeMemo` (`Arc<Mutex<..>>`),
// and parallel evaluation probes it from pool workers. Keep that
// contract checked at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IeMemo>();
    assert_send_sync::<SharedIeMemo>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DocRefCounts;
    use spannerlib_core::{DocId, Span};

    fn key(name: &str, n: i64) -> MemoKey {
        MemoKey::new(name, &[Value::Int(n)], 1)
    }

    fn rows(n: i64) -> Arc<MemoOutput> {
        Arc::new(vec![vec![Value::Int(n)]])
    }

    /// Insert with no interned documents in play (scalar workloads).
    fn put(memo: &mut IeMemo, key: MemoKey, output: Arc<MemoOutput>) {
        memo.insert(key, output, |_| 0);
    }

    #[test]
    fn batch_probe_and_insert_match_singles() {
        let mut memo = IeMemo::new(1 << 20);
        put(&mut memo, key("f", 1), rows(10));
        let probes = memo.get_batch(&[key("f", 1), key("f", 2), key("f", 1)]);
        assert_eq!(probes.len(), 3);
        assert_eq!(*probes[0].as_ref().expect("hit").clone(), *rows(10));
        assert!(probes[1].is_none());
        assert!(probes[2].is_some());
        memo.insert_batch([(key("f", 2), rows(20)), (key("f", 3), rows(30))], |_| 0);
        assert_eq!(*memo.get(&key("f", 2)).expect("inserted"), *rows(20));
        assert_eq!(*memo.get(&key("f", 3)).expect("inserted"), *rows(30));
        let stats = memo.stats();
        assert_eq!(stats.insertions, 3);
        // The only miss was `f(2)` inside the batch probe.
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn hit_returns_shared_output_and_counts() {
        let mut memo = IeMemo::new(1 << 20);
        assert!(memo.get(&key("f", 1)).is_none());
        put(&mut memo, key("f", 1), rows(10));
        let hit = memo.get(&key("f", 1)).expect("hit");
        assert_eq!(*hit, vec![vec![Value::Int(10)]]);
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn distinct_arities_are_distinct_addresses() {
        let mut memo = IeMemo::new(1 << 20);
        put(&mut memo, MemoKey::new("f", &[Value::Int(1)], 1), rows(1));
        assert!(memo.get(&MemoKey::new("f", &[Value::Int(1)], 2)).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Budget fits exactly two of these entries.
        let one = key("f", 1).bytes() + output_bytes(&rows(0)) + ENTRY_OVERHEAD;
        let mut memo = IeMemo::new(2 * one);
        put(&mut memo, key("f", 1), rows(1));
        put(&mut memo, key("f", 2), rows(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(memo.get(&key("f", 1)).is_some());
        put(&mut memo, key("f", 3), rows(3));
        assert_eq!(memo.len(), 2);
        assert!(memo.get(&key("f", 2)).is_none(), "victim was evicted");
        assert!(memo.get(&key("f", 1)).is_some());
        assert!(memo.get(&key("f", 3)).is_some());
        assert_eq!(memo.stats().evictions, 1);
        assert!(memo.bytes() <= memo.budget());
    }

    #[test]
    fn oversized_entries_are_rejected_not_thrashed() {
        let mut memo = IeMemo::new(ENTRY_OVERHEAD + 8);
        let big = Arc::new(vec![vec![Value::str("x".repeat(1024))]]);
        put(&mut memo, key("f", 1), big);
        assert!(memo.is_empty());
        assert_eq!(memo.stats().oversized, 1);
        assert_eq!(memo.stats().evictions, 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut memo = IeMemo::new(1 << 20);
        put(&mut memo, key("f", 1), rows(1));
        let bytes_once = memo.bytes();
        put(&mut memo, key("f", 1), rows(2));
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.bytes(), bytes_once);
        assert_eq!(*memo.get(&key("f", 1)).unwrap(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let mut memo = IeMemo::new(1 << 20);
        put(&mut memo, key("f", 1), rows(1));
        memo.get(&key("f", 1));
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.bytes(), 0);
        let stats = memo.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn take_stats_drains_activity_keeps_residency() {
        let mut memo = IeMemo::new(1 << 20);
        put(&mut memo, key("f", 1), rows(1));
        memo.get(&key("f", 1));
        memo.get(&key("f", 2));
        let taken = memo.take_stats();
        assert_eq!((taken.hits, taken.misses, taken.insertions), (1, 1, 1));
        assert_eq!(taken.entries, 1);
        let after = memo.stats();
        assert_eq!((after.hits, after.misses, after.insertions), (0, 0, 0));
        assert_eq!(after.entries, 1, "residency survives the drain");
        assert!(after.bytes > 0);
    }

    #[test]
    fn doc_roots_cover_keys_and_outputs() {
        let mut memo = IeMemo::new(1 << 20);
        let (d1, d2) = (DocId::from_index(1), DocId::from_index(2));
        put(
            &mut memo,
            MemoKey::new("f", &[Value::Span(Span::new(d1, 0, 1))], 1),
            Arc::new(vec![vec![Value::Span(Span::new(d2, 0, 2))]]),
        );
        let mut refs = DocRefCounts::new();
        memo.mark_doc_roots(&mut refs);
        assert!(refs.is_live(d1));
        assert!(refs.is_live(d2));
        assert!(!refs.is_live(DocId::from_index(3)));
    }

    #[test]
    fn span_entries_are_charged_their_pinned_document_text() {
        // Entries root their documents against GC, so a tiny span over
        // a big doc must cost the doc, not the span.
        let doc = DocId::from_index(0);
        let doc_len = 4096usize;
        let budget = 2 * (doc_len + 512);
        let mut memo = IeMemo::new(budget);
        for i in 0..4 {
            memo.insert(
                MemoKey::new("f", &[Value::Span(Span::new(doc, i, i + 1))], 1),
                rows(i as i64),
                |_| doc_len,
            );
        }
        assert!(
            memo.len() <= 2,
            "budget fits two doc-pinning entries, kept {}",
            memo.len()
        );
        assert!(memo.bytes() <= memo.budget());
        assert!(memo.stats().evictions >= 2);
        // The same span twice pins the doc once per entry, not per value.
        let mut single = IeMemo::new(budget);
        single.insert(
            MemoKey::new("g", &[Value::Span(Span::new(doc, 0, 1))], 1),
            Arc::new(vec![vec![Value::Span(Span::new(doc, 0, 1))]]),
            |_| doc_len,
        );
        assert!(single.bytes() < doc_len + 512);
    }

    #[test]
    fn purge_function_is_name_scoped() {
        let mut memo = IeMemo::new(1 << 20);
        put(&mut memo, key("f", 1), rows(1));
        put(&mut memo, key("f", 2), rows(2));
        put(&mut memo, key("g", 1), rows(3));
        let bytes_before = memo.bytes();
        assert_eq!(memo.purge_function("f"), 2);
        assert_eq!(memo.len(), 1);
        assert!(memo.bytes() < bytes_before);
        assert!(memo.get(&key("g", 1)).is_some(), "g stays warm");
        assert!(memo.get(&key("f", 1)).is_none());
        assert_eq!(memo.purge_function("absent"), 0);
    }

    #[test]
    fn purge_docs_drops_entries_referencing_dead_docs() {
        let mut memo = IeMemo::new(1 << 20);
        let dead = DocId::from_index(7);
        put(
            &mut memo,
            MemoKey::new("f", &[Value::Int(0)], 1),
            Arc::new(vec![vec![Value::Span(Span::new(dead, 0, 1))]]),
        );
        put(&mut memo, key("f", 1), rows(1));
        assert_eq!(memo.purge_docs(|id| id == dead), 1);
        assert_eq!(memo.len(), 1);
        assert!(memo.get(&key("f", 1)).is_some());
    }
}
