//! Cache observability counters.

/// Counters describing one [`crate::IeMemo`]'s lifetime activity —
/// exposed through `Session::stats()` so serving paths can watch hit
/// rates and eviction pressure without instrumenting IE functions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that fell through to the IE function.
    pub misses: u64,
    /// Entries stored (one per miss of a cacheable call that fit the
    /// budget).
    pub insertions: u64,
    /// Entries dropped by LRU pressure.
    pub evictions: u64,
    /// Entries rejected outright because a single entry exceeded the
    /// whole byte budget.
    pub oversized: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes currently resident (keys + outputs + fixed
    /// per-entry overhead).
    pub bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the memo, in `[0, 1]`; `0.0`
    /// before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(stats.hit_rate(), 0.75);
    }

    #[test]
    fn hit_rate_stays_finite_and_bounded() {
        // Degenerate and saturated counters must never yield NaN/∞ or
        // leave [0, 1] — serving dashboards divide by this blindly.
        let cases = [
            CacheStats::default(),
            CacheStats {
                misses: 17,
                ..CacheStats::default()
            },
            CacheStats {
                hits: u64::MAX / 2,
                misses: u64::MAX / 2,
                ..CacheStats::default()
            },
        ];
        for stats in cases {
            let rate = stats.hit_rate();
            assert!(rate.is_finite(), "{stats:?}");
            assert!((0.0..=1.0).contains(&rate), "{stats:?} → {rate}");
        }
    }
}
