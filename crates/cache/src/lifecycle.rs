//! Document-store lifecycle: GC policy and reference counting.
//!
//! The engine's `DocumentStore` interns every text an IE function (or
//! the host) touches. `remove_relation` and re-imports drop the *spans*
//! but, without help, never the *texts* — a long-lived serving session
//! that streams distinct documents grows without bound. The lifecycle
//! manager closes the loop:
//!
//! * [`DocRefCounts`] — a per-pass reference count over `DocId`s. The
//!   engine retains every span it can still observe (all relations,
//!   extensional and derived, plus resident IE-memo entries) and then
//!   compacts the store against the resulting live set.
//! * [`DocGc`] — *when* to run a pass: never (the historical
//!   append-only behavior), or whenever resident document bytes cross a
//!   threshold after an eviction-shaped mutation (`remove_relation`, a
//!   replacing import).
//!
//! Compaction is epoch-wise: every pass bumps the store's epoch, ids of
//! survivors are stable, and ids of removed documents become permanent
//! tombstones (loud errors, never aliased).

use rustc_hash::FxHashMap;
use spannerlib_core::{DocId, Tuple, Value};

/// When the engine should compact the document store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DocGc {
    /// Never compact automatically (compaction can still be invoked
    /// explicitly). The default: zero overhead, append-only semantics.
    #[default]
    Disabled,
    /// Compact after an eviction-shaped mutation once live document
    /// text exceeds `bytes`.
    Threshold {
        /// Resident-byte watermark that arms a pass.
        bytes: usize,
    },
}

impl DocGc {
    /// Whether a store holding `current_bytes` of live text warrants a
    /// pass under this policy.
    pub fn should_compact(&self, current_bytes: usize) -> bool {
        match self {
            DocGc::Disabled => false,
            DocGc::Threshold { bytes } => current_bytes > *bytes,
        }
    }
}

/// Reference counts over document ids, rebuilt per compaction pass.
///
/// A mark-phase scratchpad rather than a persistently maintained
/// counter: set-semantics relations make incremental refcounting
/// error-prone (inserts deduplicate, clones share), while one sweep
/// over live tuples is exact by construction and linear in the data.
#[derive(Debug, Default)]
pub struct DocRefCounts {
    counts: FxHashMap<DocId, u32>,
}

impl DocRefCounts {
    /// An empty count table.
    pub fn new() -> DocRefCounts {
        DocRefCounts::default()
    }

    /// Adds one reference to `id`.
    pub fn retain(&mut self, id: DocId) {
        *self.counts.entry(id).or_insert(0) += 1;
    }

    /// Adds a reference for the document behind `v`, if it holds one
    /// (only spans reference documents; strings own their text).
    pub fn retain_value(&mut self, v: &Value) {
        if let Value::Span(span) = v {
            self.retain(span.doc);
        }
    }

    /// Retains every document referenced by a tuple.
    pub fn retain_tuple(&mut self, tuple: &Tuple) {
        for v in tuple.values() {
            self.retain_value(v);
        }
    }

    /// Number of references recorded for `id`.
    pub fn count(&self, id: DocId) -> u32 {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// Whether `id` is referenced at all — the liveness predicate
    /// handed to `DocumentStore::compact`.
    pub fn is_live(&self, id: DocId) -> bool {
        self.counts.contains_key(&id)
    }

    /// Number of distinct live documents.
    pub fn live_docs(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_core::Span;

    #[test]
    fn threshold_policy_arms_above_watermark() {
        assert!(!DocGc::Disabled.should_compact(usize::MAX));
        let policy = DocGc::Threshold { bytes: 100 };
        assert!(!policy.should_compact(100));
        assert!(policy.should_compact(101));
    }

    #[test]
    fn refcounts_track_spans_only() {
        let mut refs = DocRefCounts::new();
        let doc = DocId::from_index(3);
        let tuple = Tuple::new([
            Value::str("owned text references no document"),
            Value::Span(Span::new(doc, 0, 4)),
            Value::Span(Span::new(doc, 5, 9)),
            Value::Int(42),
        ]);
        refs.retain_tuple(&tuple);
        assert_eq!(refs.count(doc), 2);
        assert!(refs.is_live(doc));
        assert!(!refs.is_live(DocId::from_index(0)));
        assert_eq!(refs.live_docs(), 1);
    }
}
