//! # spannerlib-cache
//!
//! Memoized IE evaluation and document-store lifecycle management for
//! long-lived serving sessions.
//!
//! SpannerLib's embedding pays off when repeated invocations over
//! overlapping documents do not re-pay the full spanner-evaluation cost
//! (the expensive part — see Maturana, Riveros & Vrgoč on the complexity
//! of evaluating document spanners). Two pressures build up in a session
//! that serves traffic for hours:
//!
//! 1. **Recomputation** — every fixpoint rerun re-invokes each IE
//!    function on each binding row, even though IE functions are
//!    *stateless* mappings from inputs to output relations. The
//!    [`IeMemo`] is a content-addressed memo table over
//!    `(function, argument values, output arity)` with a byte-budgeted
//!    LRU eviction policy and hit/miss/eviction counters
//!    ([`CacheStats`]).
//! 2. **Document accumulation** — the engine's `DocumentStore` interns
//!    every text an IE function touches and never forgets it. The
//!    [`lifecycle`] module supplies the policy ([`DocGc`]) and the
//!    reference-counting scratchpad ([`DocRefCounts`]) the engine uses
//!    to compact the store epoch-wise: documents referenced by no live
//!    relation and no memo entry are tombstoned, releasing their text.
//!
//! The two halves cooperate: memo entries are GC *roots* (a cached
//! output may contain spans into documents no relation currently
//! references), and the memo's byte budget therefore also bounds how
//! much document text the cache can pin.
//!
//! This crate is engine-agnostic: it depends only on the core value
//! model, and the engine crate wires it into evaluation, the session
//! builder, and snapshots.

pub mod lifecycle;
pub mod memo;
pub mod stats;

pub use lifecycle::{DocGc, DocRefCounts};
pub use memo::{IeMemo, MemoKey, SharedIeMemo};
pub use stats::CacheStats;
