//! # spannerlib
//!
//! A Rust library for **embedding declarative Information Extraction in an
//! imperative workflow** — a from-scratch reproduction of the SpannerLib
//! system (Light et al., PVLDB 17(12), 2024).
//!
//! SpannerLib rests on *document spanners*: information extraction cast as
//! relational querying over strings and spans. Its language, **Spannerlog**,
//! is Datalog over strings and spans extended with *IE atoms*
//! `f(x…) -> (y…)` that call out to IE functions — regex formulas, NLP
//! models, LLMs, or any host callback registered on the [`Session`].
//!
//! ## The three pillars (paper §3)
//!
//! 1. **Spannerlog implementation** — [`spannerlog_engine`] evaluates
//!    programs bottom-up (naive or semi-naive), with a semantic safety
//!    checker that also sequences IE calls inside each rule body, stratified
//!    negation, and aggregation.
//! 2. **Embedding Spannerlog in Rust** — a [`Session`] accepts "cells" of
//!    Spannerlog source ([`Session::run`]) interleaved with ordinary Rust
//!    code, and moves relations in and out as [`DataFrame`]s
//!    ([`Session::import_dataframe`] / [`Session::export`]).
//! 3. **Embedding Rust in Spannerlog** — any `Fn(&[Value]) -> rows` can be
//!    registered as an IE function ([`Session::register`]) and invoked from
//!    rules as a callback.
//!
//! ## Quick start: builder → prepare → execute
//!
//! The serving-path lifecycle — configure a session once, compile the
//! program once, then execute against freshly imported data as many
//! times as traffic demands:
//!
//! ```
//! use spannerlib::prelude::*;
//!
//! // 1. Build: strategy, resource limits, IE registry seeding.
//! let mut session = Session::builder()
//!     .max_fixpoint_rounds(10_000)
//!     .max_materialized_rows(1_000_000)
//!     .build();
//!
//! // 2. Load the program and compile it exactly once.
//! session.import_typed("Texts", vec![
//!     ("2024-01-01", "reach me at ann@gmail.com"),
//! ]).unwrap();
//! session.run(r#"
//!     R(usr, dom) <- Texts(d, t),
//!                    rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom).
//! "#).unwrap();
//! let query = session.prepare(r#"?R(usr, "gmail")"#).unwrap();
//!
//! // 3. Execute per batch: no re-parse, no re-plan; the fixpoint only
//! //    reruns when an input relation actually changed.
//! for batch in [vec![("2024-01-02", "or bob@work.org and eve@gmail.com")]] {
//!     session.import_typed("Texts", batch).unwrap();
//!     let out = query.execute(&mut session).unwrap();
//!     assert_eq!(out.num_rows(), 1);
//! }
//!
//! // 4. Typed export — host structs instead of stringly frames — and a
//! //    Send + Sync snapshot for lock-free concurrent reads.
//! let gmail_users: Vec<(String,)> = query.execute_typed(&mut session).unwrap();
//! assert_eq!(gmail_users[0].0, "eve");
//! let snapshot = session.snapshot().unwrap();
//! std::thread::scope(|s| {
//!     s.spawn(|| assert_eq!(snapshot.execute(&query).unwrap().num_rows(), 1));
//! });
//! ```
//!
//! ## The paper's four verbs
//!
//! The §3.2 notebook API — `import`/`run`/`export`/`register` — still
//! works unchanged, as thin wrappers over the same lifecycle:
//!
//! ```
//! use spannerlib::prelude::*;
//!
//! let mut session = Session::new();
//! let df = DataFrame::from_rows(
//!     vec!["date".into(), "text".into()],
//!     vec![
//!         vec![Value::str("2024-01-01"), Value::str("reach me at ann@gmail.com")],
//!         vec![Value::str("2024-01-02"), Value::str("or bob@work.org instead")],
//!     ],
//! )
//! .unwrap();
//! session.import_dataframe(&df, "Texts").unwrap();
//!
//! session
//!     .run(r#"
//!         R(usr, dom) <- Texts(d, t),
//!                        rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom).
//!     "#)
//!     .unwrap();
//!
//! let out = session.export("?R(usr, \"gmail\")").unwrap();
//! assert_eq!(out.num_rows(), 1);
//! ```
//!
//! The sub-crates are re-exported here so downstream users depend on a
//! single crate:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | spans, documents, values, relations |
//! | [`cache`] | IE memo table + doc-store lifecycle (GC) |
//! | [`regex`] | the regex-formula (document spanner) engine |
//! | [`dataframe`] | the columnar host-side table type |
//! | [`parser`] | Spannerlog lexer/parser/AST |
//! | [`engine`] | safety, evaluation, builtins, [`Session`] |
//! | [`nlp`] | rule-based NLP substrate (tokenizer … ConText) |
//! | [`llm`] | deterministic LLM mock, TF-IDF RAG, few-shot store |
//! | [`codeast`] | minilang parser + AST pattern matcher |
//! | [`covid`] | the §4.2 case study, both implementations |
//! | [`trace`] | structured tracing, metrics, per-rule profiling |
//! | [`serve`] | `spannerd`: the HTTP serving front end |

pub use spannerlib_cache as cache;
pub use spannerlib_codeast as codeast;
pub use spannerlib_core as core;
pub use spannerlib_covid as covid;
pub use spannerlib_dataframe as dataframe;
pub use spannerlib_llm as llm;
pub use spannerlib_nlp as nlp;
pub use spannerlib_regex as regex;
pub use spannerlib_serve as serve;
pub use spannerlib_trace as trace;
pub use spannerlog_engine as engine;
pub use spannerlog_parser as parser;

pub use spannerlib_core::{DocId, DocumentStore, Relation, Schema, Span, Tuple, Value, ValueType};
pub use spannerlib_dataframe::DataFrame;
pub use spannerlog_engine::{
    CacheStats, DocGc, EvalProfile, PreparedProgram, PreparedQuery, RingTracer, Session,
    SessionBuilder, SessionStats, Snapshot, TraceLevel, Tracer,
};

/// Everything a typical embedding needs, in one import.
pub mod prelude {
    pub use crate::core::{DocumentStore, Relation, Schema, Span, Tuple, Value, ValueType};
    pub use crate::dataframe::{DataFrame, FromRow, FromValue, IntoRow, IntoRows, IntoValue};
    pub use crate::engine::{
        CacheStats, DocGc, EngineError, EvalProfile, EvalStrategy, IeFunction, PreparedProgram,
        PreparedQuery, Session, SessionBuilder, SessionStats, Snapshot, TraceLevel,
    };
}
