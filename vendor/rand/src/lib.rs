//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! Provides the subset the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen_ratio, gen}`, and
//! `seq::SliceRandom::{choose, shuffle}` — on top of a xoshiro256++
//! generator seeded through SplitMix64. Deterministic for a given seed
//! (the workspace's corpora and workloads are all seed-addressed), though
//! the streams differ from the real crate's.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types sampleable by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` given a raw 64-bit source.
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. Unlike a successor-based
    /// reduction to the half-open case, this handles `high == T::MAX`
    /// (the span arithmetic runs in `u128`).
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

/// Raw 64-bit random source.
pub trait RngCore {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }

    /// Bernoulli draw with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }

    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn inclusive_range_reaches_type_max_and_singletons() {
        let mut rng = rngs::StdRng::seed_from_u64(13);
        // MAX..=MAX is a valid single-element range.
        assert_eq!(rng.gen_range(u64::MAX..=u64::MAX), u64::MAX);
        assert_eq!(rng.gen_range(0u8..=0), 0);
        // 0..=u8::MAX must be able to produce 255.
        let saw_max = (0..10_000).any(|_| rng.gen_range(0u8..=u8::MAX) == u8::MAX);
        assert!(saw_max, "inclusive range never produced the type max");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_ratio_is_roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let pool = [1, 2, 3];
        assert!(pool.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
