//! Strategy combinators: generation-only equivalents of proptest's.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::rc::Rc;

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds recursive structures: starting from `self` as the leaf
    /// strategy, applies `recurse` up to `depth` times, mixing each new
    /// layer with the previous ones. Termination is by construction —
    /// layer *k* only references layers below it.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut acc = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(acc.clone()).boxed();
            acc = Union::new(vec![(1, acc), (2, deeper)]).boxed();
        }
        acc
    }
}

/// Object-safe view of [`Strategy`] for type erasure.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { options, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// [`crate::prelude::any`] adapter.
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> AnyStrategy<T> {
    /// A fresh instance.
    pub fn new() -> Self {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

impl<T> Default for AnyStrategy<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// Integer range strategies delegate to the vendored rand's uniform
// sampling (one implementation of the modular arithmetic, shared with
// every other seed-addressed workload in the workspace).
impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Collection size specification.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// `prop::collection::vec` strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of` strategy.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(inner: S) -> Self {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

// ---------------------------------------------------------------------
// Regex-literal string strategies (`"[ab ]{0,20}"` in proptest parlance)
// ---------------------------------------------------------------------

/// One parsed atom of the mini-regex syntax.
#[derive(Debug, Clone)]
enum RegexAtom {
    Literal(char),
    /// Flattened list of candidate characters.
    Class(Vec<char>),
    AnyChar,
}

#[derive(Debug, Clone)]
struct RegexPart {
    atom: RegexAtom,
    min: usize,
    max: usize,
}

/// Parses the subset of regex syntax proptest string strategies commonly
/// use: literals, `[…]` classes (with ranges), `.`, and the quantifiers
/// `{m}`, `{m,n}`, `*`, `+`, `?` (starred forms capped at 8 repeats).
fn parse_string_pattern(pattern: &str) -> Vec<RegexPart> {
    const UNBOUNDED_CAP: usize = 8;
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts: Vec<RegexPart> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        set.push(chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "string strategy {pattern:?}: unclosed character class"
                );
                i += 1; // closing ]
                RegexAtom::Class(set)
            }
            '.' => {
                i += 1;
                RegexAtom::AnyChar
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                match c {
                    'd' => RegexAtom::Class(('0'..='9').collect()),
                    'w' => RegexAtom::Class(
                        ('a'..='z')
                            .chain('A'..='Z')
                            .chain('0'..='9')
                            .chain(['_'])
                            .collect(),
                    ),
                    's' => RegexAtom::Class(vec![' ', '\t', '\n']),
                    other => RegexAtom::Literal(other),
                }
            }
            // Metacharacters this mini-parser does not implement must
            // fail loudly — treating them as literals would make
            // property tests generate unintended inputs while passing.
            c @ ('(' | ')' | '|' | '^' | '$') => {
                panic!(
                    "string strategy {pattern:?}: unsupported regex metacharacter {c:?} \
                     (the vendored proptest supports literals, [...] classes, '.', \\d \\w \\s, \
                     and the quantifiers {{m}}, {{m,n}}, *, +, ?)"
                );
            }
            c => {
                i += 1;
                RegexAtom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .expect("unclosed {} quantifier");
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    let lo: usize = lo.trim().parse().expect("bad quantifier");
                    let hi: usize = if hi.trim().is_empty() {
                        lo + UNBOUNDED_CAP
                    } else {
                        hi.trim().parse().expect("bad quantifier")
                    };
                    assert!(
                        lo <= hi,
                        "string strategy {pattern:?}: inverted quantifier {{{lo},{hi}}}"
                    );
                    (lo, hi)
                } else {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        parts.push(RegexPart { atom, min, max });
    }
    parts
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for part in parse_string_pattern(pattern) {
        let span = (part.max - part.min) as u64 + 1;
        let count = part.min + rng.below(span) as usize;
        for _ in 0..count {
            match &part.atom {
                RegexAtom::Literal(c) => out.push(*c),
                RegexAtom::Class(set) => {
                    assert!(!set.is_empty(), "empty character class");
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                RegexAtom::AnyChar => {
                    let printable: u8 = b' ' + rng.below(95) as u8;
                    out.push(printable as char);
                }
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}
