//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the strategy combinators and macros the workspace's
//! property suites use — `Strategy` (`prop_map`, `prop_recursive`,
//! `boxed`), `Just`, integer-range and regex-string strategies,
//! `prop::collection::vec`, `prop::option::of`, tuple strategies,
//! `any::<T>()`, `prop_oneof!`, and the `proptest!` test macro with
//! `#![proptest_config(…)]` — on a deterministic per-test RNG.
//!
//! Differences from the real crate: generation only (no shrinking — on
//! a failing case the runner prints the case number and the generated
//! inputs to stderr, then re-raises the panic), and value streams
//! differ. Case counts are honored. Generated values must be `Debug`,
//! as with real proptest.

pub mod strategy;

pub mod test_runner {
    /// Per-test configuration (`cases` is the only knob honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic source used by all strategies — the vendored rand
    /// generator (xoshiro256++), seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary byte string (the
        /// `proptest!` macro passes the test's name, FNV-1a hashed).
        pub fn from_name(name: &str) -> TestRng {
            use rand::SeedableRng;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }

        /// The next raw 64 bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// Uniform draw from `[0, bound)`.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    impl rand::RngCore for TestRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            TestRng::next_u64(self)
        }
    }
}

/// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// `prop::option` namespace.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` ~25% of the time, `Some(inner)`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy::new(inner)
    }
}

/// Types with a canonical strategy, for [`prelude::any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Everything the property suites import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The canonical strategy for a type (`any::<bool>()`).
    pub fn any<T: crate::Arbitrary>() -> crate::strategy::AnyStrategy<T> {
        crate::strategy::AnyStrategy::new()
    }

    /// Namespaced access (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Weighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion that reports the failing inputs (no shrinking, so the raw
/// case is printed as-is).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Equality assertion with optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            panic!(
                "prop_assert_eq failed:\n  left: {:?}\n right: {:?}",
                __l, __r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            panic!(
                "prop_assert_eq failed ({}):\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            );
        }
    }};
}

/// Inequality assertion with optional context message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            panic!("prop_assert_ne failed: both sides are {:?}", __l);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            panic!(
                "prop_assert_ne failed ({}): both sides are {:?}",
                format!($($fmt)+),
                __l
            );
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            // Build each strategy once; draw per case.
            $(let $arg = $strat;)+
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                // Render the inputs up front so a panicking case can be
                // reproduced by inspection (there is no shrinking).
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn just_and_map() {
        let mut rng = crate::test_runner::TestRng::from_name("t");
        let s = Just(3).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng), 6);
    }

    #[test]
    fn ranges_and_vec() {
        let mut rng = crate::test_runner::TestRng::from_name("t2");
        let s = prop::collection::vec((0u8..4, 0u8..4), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 4 && b < 4));
        }
    }

    #[test]
    fn oneof_weights_cover_all_branches() {
        let mut rng = crate::test_runner::TestRng::from_name("t3");
        let s = prop_oneof![4 => Just('a'), 1 => Just('b')];
        let drawn: std::collections::BTreeSet<char> =
            (0..200).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(drawn.len(), 2);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = crate::test_runner::TestRng::from_name("t4");
        let s = Just(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn regex_string_strategy() {
        let mut rng = crate::test_runner::TestRng::from_name("t5");
        let s = "[ab ]{0,20}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.len() <= 20);
            assert!(v.chars().all(|c| c == 'a' || c == 'b' || c == ' '));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u8..10, ys in prop::collection::vec(0u8..5, 0..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(ys.len(), ys.len(), "lens of {:?}", ys);
            prop_assert_ne!(x as usize, 100);
        }
    }
}
