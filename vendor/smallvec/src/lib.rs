//! Offline stand-in for [`smallvec`](https://crates.io/crates/smallvec).
//!
//! Exposes the `SmallVec<[T; N]>` type the workspace uses. This vendored
//! version is backed by a plain `Vec` (no inline storage), trading the
//! small-size optimization for zero unsafe code; the API — `Deref` to
//! slice, `FromIterator`, `Extend`, ordering/hashing — matches, so the
//! real crate can be dropped in whenever a registry is reachable.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// Types usable as the inline-array parameter of [`SmallVec`].
pub trait Array {
    /// Element type.
    type Item;
    /// Inline capacity of the real smallvec (unused here).
    fn capacity() -> usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;

    fn capacity() -> usize {
        N
    }
}

/// A growable vector with the `smallvec` API, backed by `Vec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
    _marker: PhantomData<A>,
}

impl<A: Array> SmallVec<A> {
    /// An empty vector.
    pub fn new() -> Self {
        SmallVec {
            inner: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// An empty vector with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(n),
            _marker: PhantomData,
        }
    }

    /// Builds from a `Vec` without copying.
    pub fn from_vec(v: Vec<A::Item>) -> Self {
        SmallVec {
            inner: v,
            _marker: PhantomData,
        }
    }

    /// Appends an element.
    pub fn push(&mut self, item: A::Item) {
        self.inner.push(item);
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Consumes self, returning the backing `Vec`.
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }

    /// Consuming iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn into_iter(self) -> std::vec::IntoIter<A::Item> {
        self.inner.into_iter()
    }
}

impl<A: Array> SmallVec<A>
where
    A::Item: Clone,
{
    /// Builds by cloning a slice.
    pub fn from_slice(s: &[A::Item]) -> Self {
        SmallVec {
            inner: s.to_vec(),
            _marker: PhantomData,
        }
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];

    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
            _marker: PhantomData,
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> PartialOrd for SmallVec<A>
where
    A::Item: PartialOrd,
{
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.inner.partial_cmp(&other.inner)
    }
}

impl<A: Array> Ord for SmallVec<A>
where
    A::Item: Ord,
{
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.cmp(&other.inner)
    }
}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// `smallvec![…]` — same shorthand as the real crate.
#[macro_export]
macro_rules! smallvec {
    ($($x:expr),* $(,)?) => {
        $crate::SmallVec::from_vec(vec![$($x),*])
    };
    ($x:expr; $n:expr) => {
        $crate::SmallVec::from_vec(vec![$x; $n])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_deref_and_order() {
        let v: SmallVec<[i32; 4]> = (0..3).collect();
        assert_eq!(&v[..], &[0, 1, 2]);
        let w: SmallVec<[i32; 4]> = (0..4).collect();
        assert!(v < w);
        assert_eq!(<[i32; 4] as Array>::capacity(), 4);
    }

    #[test]
    fn macro_forms() {
        let a: SmallVec<[u8; 2]> = smallvec![1, 2, 3];
        assert_eq!(a.len(), 3);
        let b: SmallVec<[u8; 2]> = smallvec![9; 4];
        assert_eq!(&b[..], &[9, 9, 9, 9]);
    }
}
