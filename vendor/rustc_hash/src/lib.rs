//! Offline stand-in for [`rustc-hash`](https://crates.io/crates/rustc-hash).
//!
//! Implements the same Fx multiply-rotate hash over machine words and the
//! `FxHashMap` / `FxHashSet` aliases the workspace uses. The container has
//! no network access, so the handful of external crates the code assumes
//! are vendored as minimal API-compatible implementations (see
//! `vendor/README.md`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic hasher for small keys (the FxHash algorithm
/// used inside rustc: multiply by a large odd constant, rotate, xor).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m["a"], 1);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"spannerlib");
        h2.write(b"spannerlib");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"spannerlog");
        assert_ne!(h1.finish(), h3.finish());
    }
}
