//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free locking
//! API (`lock()` returns the guard directly; a poisoned lock is recovered
//! rather than propagated, matching parking_lot's no-poisoning design).

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
