//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Supports the bench surface this workspace uses — `Criterion`,
//! `benchmark_group` (with `sample_size` / `throughput`),
//! `bench_with_input`, `bench_function`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of criterion's statistical machinery it runs a short
//! warmup-then-measure loop and prints mean wall-clock time per
//! iteration, which is enough for the relative comparisons the ROADMAP
//! ablations need. `cargo bench -- <filter>` substring filtering works.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; a bare trailing argument is a
        // name filter, matching criterion's CLI. A `--flag value` pair
        // must not have its value misread as a filter, so a dashed flag
        // without `=` consumes the following argument.
        // Flags are boolean unless known to take a value: assuming the
        // opposite would let any unrecognized boolean flag swallow the
        // bench-name filter that follows it. (`value=x` forms carry
        // their value inline either way.)
        const VALUE_FLAGS: &[&str] = &[
            "--sample-size",
            "--warm-up-time",
            "--measurement-time",
            "--save-baseline",
            "--baseline",
            "--load-baseline",
            "--logfile",
            "--color",
            "--format",
            "--output-format",
            "--profile-time",
            "--significance-level",
            "--noise-threshold",
            "--confidence-level",
            "--nresamples",
        ];
        let mut filter = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if a.starts_with('-') {
                if !a.contains('=') && VALUE_FLAGS.contains(&a.as_str()) {
                    args.next();
                }
                continue;
            }
            if !a.is_empty() {
                filter = Some(a);
                break;
            }
        }
        Criterion {
            filter,
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_samples;
        self.run_one(name, None, samples, &mut f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<&Throughput>, samples: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            samples: samples.max(1),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        };
        let rate = match throughput {
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!(
                    "  {:>10.1} MiB/s",
                    *n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  {:>10.1} elem/s", *n as f64 / (mean_ns / 1e9))
            }
            _ => String::new(),
        };
        println!("{id:<50} {:>12.1} ns/iter{rate}", mean_ns);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the per-iteration throughput of subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        let throughput = self.throughput.clone();
        self.criterion.run_one(
            &full,
            throughput.as_ref(),
            samples,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        let throughput = self.throughput.clone();
        self.criterion
            .run_one(&full, throughput.as_ref(), samples, &mut f);
        self
    }

    /// Ends the group (a no-op beyond parity with criterion).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (the group name identifies the
    /// function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

/// Conversion into [`BenchmarkId`], so string names work directly.
pub trait IntoBenchmarkId {
    /// Converts self.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

/// Per-iteration throughput declaration.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal multiple (parity with criterion).
    BytesDecimal(u64),
}

/// Runs the measured closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, one warmup pass then `samples` measured passes.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warmup / fault-in
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion {
            filter: None,
            default_samples: 2,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(10));
        group.bench_with_input(BenchmarkId::from_parameter(1), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("f", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 10).render(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").render(), "x");
    }
}
