//! Offline stand-in for [`thiserror`](https://crates.io/crates/thiserror).
//!
//! Re-exports the vendored `derive(Error)` macro, which supports the
//! subset of thiserror the workspace uses: enums with unit, tuple, and
//! named-field variants; `#[error("… {named} … {0} …")]` display
//! attributes (including `{x:?}`-style format specs and `{{` escapes);
//! `#[error(transparent)]`; and `#[from]` / `#[source]` fields (which
//! also wire up `std::error::Error::source` and a `From` impl).

pub use thiserror_impl::Error;
