//! A hand-rolled `derive(Error)` covering the thiserror subset this
//! workspace uses. Written directly against `proc_macro` token trees
//! (the build environment is offline, so `syn`/`quote` are unavailable).
//!
//! Supported shape: a (non-generic) `enum` whose variants are unit,
//! tuple, or named-struct style, each carrying one `#[error(…)]`
//! attribute that is either a format-string literal or `transparent`.
//! Fields may be marked `#[from]` (generates a `From` impl and wires
//! `Error::source`) or `#[source]` (wires `source` only).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum DisplayAttr {
    /// `#[error("…")]` — the literal exactly as written in source.
    Format(String),
    /// `#[error(transparent)]`.
    Transparent,
}

#[derive(Debug, Clone)]
struct Field {
    /// Field name for named variants, `None` for tuple fields.
    name: Option<String>,
    /// Rendered type tokens.
    ty: String,
    /// Carries `#[from]`.
    is_from: bool,
    /// Carries `#[source]` (or `#[from]`, which implies it).
    is_source: bool,
}

#[derive(Debug, Clone)]
enum FieldsKind {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    display: Option<DisplayAttr>,
    fields: FieldsKind,
}

/// Derives `Display`, `std::error::Error`, and `From` (for `#[from]`
/// fields) in the style of thiserror.
#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Walk outer attributes (capturing `#[error(…)]` for the struct
    // case) and visibility, until `enum` or `struct`.
    let mut outer_display = None;
    let mut is_struct = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(attr)) = tokens.get(i + 1) {
                    if let Some(d) = parse_error_attr(attr.stream()) {
                        outer_display = Some(d);
                    }
                }
                i += 2; // `#` + `[...]`
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => break,
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                is_struct = true;
                break;
            }
            _ => i += 1,
        }
    }
    if i >= tokens.len() {
        return Err("derive(Error): no enum or struct found".into());
    }
    i += 1; // past `enum` / `struct`
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Error): missing type name".into()),
    };
    i += 1;

    let variants = if is_struct {
        // Model the struct as a single pseudo-variant named like the type.
        let fields = loop {
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    break FieldsKind::Named(parse_fields(g.stream(), true)?);
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    break FieldsKind::Tuple(parse_fields(g.stream(), false)?);
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => break FieldsKind::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    return Err("vendored derive(Error) does not support generics".into());
                }
                Some(_) => i += 1,
                None => break FieldsKind::Unit,
            }
        };
        vec![Variant {
            name: name.clone(),
            display: outer_display,
            fields,
        }]
    } else {
        let body = loop {
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    return Err("vendored derive(Error) does not support generics".into());
                }
                Some(_) => i += 1,
                None => return Err("derive(Error): missing enum body".into()),
            }
        };
        parse_variants(body)?
    };

    let mut out = String::new();
    out.push_str(&render_display(&name, &variants, is_struct)?);
    out.push_str(&render_error(&name, &variants, is_struct));
    out.push_str(&render_from(&name, &variants, is_struct));
    out.parse::<TokenStream>()
        .map_err(|e| format!("derive(Error): generated code failed to parse: {e}"))
}

/// Splits the enum body into variants, keeping each variant's attributes.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes before the variant name.
        let mut display = None;
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            let TokenTree::Group(attr) = &tokens[i + 1] else {
                return Err("derive(Error): malformed attribute".into());
            };
            if let Some(d) = parse_error_attr(attr.stream()) {
                display = Some(d);
            }
            i += 2;
        }
        let TokenTree::Ident(vname) = &tokens[i] else {
            return Err(format!(
                "derive(Error): expected variant name, got {:?}",
                tokens[i].to_string()
            ));
        };
        let vname = vname.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                FieldsKind::Tuple(parse_fields(g.stream(), false)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                FieldsKind::Named(parse_fields(g.stream(), true)?)
            }
            _ => FieldsKind::Unit,
        };
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant {
            name: vname,
            display,
            fields,
        });
    }
    Ok(variants)
}

/// Parses the inside of an `#[…]` group; returns the display spec when it
/// is an `error(…)` attribute.
fn parse_error_attr(stream: TokenStream) -> Option<DisplayAttr> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "error" => {}
        _ => return None,
    }
    let TokenTree::Group(args) = tokens.get(1)? else {
        return None;
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "transparent" => {
            Some(DisplayAttr::Transparent)
        }
        Some(TokenTree::Literal(lit)) => Some(DisplayAttr::Format(lit.to_string())),
        _ => None,
    }
}

/// Parses a comma-separated field list (tuple or named).
fn parse_fields(stream: TokenStream, named: bool) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    // Split on top-level commas (token trees already nest groups).
    let mut current: Vec<TokenTree> = Vec::new();
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !current.is_empty() {
                    chunks.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(t),
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }

    for chunk in chunks {
        let mut is_from = false;
        let mut is_source = false;
        let mut j = 0;
        while let Some(TokenTree::Punct(p)) = chunk.get(j) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = chunk.get(j + 1) {
                let attr = g.stream().to_string();
                if attr == "from" {
                    is_from = true;
                    is_source = true;
                } else if attr == "source" {
                    is_source = true;
                }
            }
            j += 2;
        }
        // Skip a `pub` visibility if present.
        if let Some(TokenTree::Ident(id)) = chunk.get(j) {
            if id.to_string() == "pub" {
                j += 1;
            }
        }
        let (name, ty_start) = if named {
            let Some(TokenTree::Ident(id)) = chunk.get(j) else {
                return Err("derive(Error): expected field name".into());
            };
            // Skip `name :`.
            (Some(id.to_string()), j + 2)
        } else {
            (None, j)
        };
        let ty = render_tokens(&chunk[ty_start..]);
        fields.push(Field {
            name,
            ty,
            is_from,
            is_source,
        });
    }
    Ok(fields)
}

/// Renders a token sequence back to source, separating only tokens that
/// would otherwise glue into one (two identifiers/literals in a row).
/// Naive space-joining breaks `::` paths — `:` arrives as two separate
/// punct tokens.
fn render_tokens(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    let mut prev_wordlike = false;
    for t in tokens {
        let s = t.to_string();
        let wordlike = matches!(t, TokenTree::Ident(_) | TokenTree::Literal(_));
        if prev_wordlike && wordlike {
            out.push(' ');
        }
        out.push_str(&s);
        prev_wordlike = wordlike;
    }
    out
}

/// Pattern binding for a variant plus the names bound, in field order.
/// For structs (`is_struct`) the pattern is the bare type name.
fn binding(name: &str, v: &Variant, is_struct: bool) -> (String, Vec<String>) {
    let path = if is_struct {
        name.to_string()
    } else {
        format!("{name}::{}", v.name)
    };
    match &v.fields {
        FieldsKind::Unit => (path, Vec::new()),
        FieldsKind::Tuple(fs) => {
            let binds: Vec<String> = (0..fs.len()).map(|i| format!("__f{i}")).collect();
            (format!("{path}({})", binds.join(", ")), binds)
        }
        FieldsKind::Named(fs) => {
            let binds: Vec<String> = fs.iter().map(|f| f.name.clone().unwrap()).collect();
            (format!("{path} {{ {} }}", binds.join(", ")), binds)
        }
    }
}

/// Rewrites positional `{0}` / `{0:?}` references in a format literal to
/// the `__fN` bindings used in tuple patterns. Named references and `{{`
/// escapes pass through untouched (named fields are bound by their own
/// names, so implicit capture picks them up).
fn rewrite_positional(lit: &str) -> String {
    let chars: Vec<char> = lit.chars().collect();
    let mut out = String::with_capacity(lit.len() + 8);
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '{' {
            if chars.get(i + 1) == Some(&'{') {
                out.push_str("{{");
                i += 2;
                continue;
            }
            // Collect the argument name (up to `:` or `}`).
            let mut j = i + 1;
            let mut arg = String::new();
            while j < chars.len() && chars[j] != ':' && chars[j] != '}' {
                arg.push(chars[j]);
                j += 1;
            }
            out.push('{');
            if !arg.is_empty() && arg.chars().all(|d| d.is_ascii_digit()) {
                out.push_str("__f");
            }
            out.push_str(&arg);
            i = j;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

fn render_display(name: &str, variants: &[Variant], is_struct: bool) -> Result<String, String> {
    let mut arms = String::new();
    for v in variants {
        let (pat, binds) = binding(name, v, is_struct);
        match &v.display {
            Some(DisplayAttr::Transparent) => {
                let target = binds
                    .first()
                    .ok_or_else(|| format!("transparent variant {} has no field", v.name))?;
                arms.push_str(&format!(
                    "{pat} => ::core::fmt::Display::fmt({target}, __formatter),\n"
                ));
            }
            Some(DisplayAttr::Format(lit)) => {
                let fmt = rewrite_positional(lit);
                arms.push_str(&format!(
                    "#[allow(unused_variables)] {pat} => ::core::write!(__formatter, {fmt}),\n"
                ));
            }
            None => {
                return Err(format!(
                    "variant {} is missing an #[error(…)] attribute",
                    v.name
                ));
            }
        }
    }
    Ok(format!(
        "impl ::core::fmt::Display for {name} {{\n\
           fn fmt(&self, __formatter: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
             match self {{\n{arms}}}\n\
           }}\n\
         }}\n"
    ))
}

fn render_error(name: &str, variants: &[Variant], is_struct: bool) -> String {
    let mut arms = String::new();
    for v in variants {
        let (pat, binds) = binding(name, v, is_struct);
        let fields: &[Field] = match &v.fields {
            FieldsKind::Unit => &[],
            FieldsKind::Tuple(f) | FieldsKind::Named(f) => f,
        };
        let source_bind = fields
            .iter()
            .zip(&binds)
            .find(|(f, _)| f.is_source)
            .map(|(_, b)| b.clone());
        let transparent = matches!(v.display, Some(DisplayAttr::Transparent));
        match source_bind {
            // thiserror's `transparent` forwards the *whole* error
            // identity, so `source()` delegates to the inner error's
            // source rather than adding a chain level.
            Some(b) if transparent => arms.push_str(&format!(
                "#[allow(unused_variables)] {pat} => ::std::error::Error::source({b}),\n"
            )),
            Some(b) => arms.push_str(&format!(
                "#[allow(unused_variables)] {pat} => ::core::option::Option::Some({b} as &(dyn ::std::error::Error + 'static)),\n"
            )),
            None => arms.push_str(&format!(
                "#[allow(unused_variables)] {pat} => ::core::option::Option::None,\n"
            )),
        }
    }
    format!(
        "impl ::std::error::Error for {name} {{\n\
           fn source(&self) -> ::core::option::Option<&(dyn ::std::error::Error + 'static)> {{\n\
             match self {{\n{arms}}}\n\
           }}\n\
         }}\n"
    )
}

fn render_from(name: &str, variants: &[Variant], is_struct: bool) -> String {
    let mut out = String::new();
    for v in variants {
        let fields: &[Field] = match &v.fields {
            FieldsKind::Unit => continue,
            FieldsKind::Tuple(f) | FieldsKind::Named(f) => f,
        };
        let Some(from_field) = fields.iter().find(|f| f.is_from) else {
            continue;
        };
        if fields.len() != 1 {
            // thiserror allows #[from] with a backtrace sibling; this
            // subset does not.
            continue;
        }
        let ty = &from_field.ty;
        let path = if is_struct {
            name.to_string()
        } else {
            format!("{name}::{}", v.name)
        };
        let construct = match &v.fields {
            FieldsKind::Tuple(_) => format!("{path}(source)"),
            FieldsKind::Named(_) => {
                format!(
                    "{path} {{ {}: source }}",
                    from_field.name.as_deref().unwrap()
                )
            }
            FieldsKind::Unit => unreachable!(),
        };
        out.push_str(&format!(
            "impl ::core::convert::From<{ty}> for {name} {{\n\
               fn from(source: {ty}) -> Self {{ {construct} }}\n\
             }}\n"
        ));
    }
    out
}
